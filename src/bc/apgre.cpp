#include "bc/apgre.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>

#include "bc/frontier.hpp"
#include "bcc/reach.hpp"
#include "graph/transform.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace apgre {

namespace {

constexpr std::int32_t kUnvisited = -1;

// --------------------------------------------------------------------------
// Serial per-sub-graph kernel (paper Algorithm 2). One backward sweep
// accumulates all four dependency types:
//   d_i2i: plain Brandes dependency restricted to the sub-graph,
//   d_i2o: initialised with alpha at boundary APs, propagated upward,
//   d_o2o: initialised with beta(s)*alpha at boundary APs when the source
//          is itself a boundary AP,
//   out2in needs no array: delta_o2i = beta(s) * d_i2i (paper eq. 5).
// --------------------------------------------------------------------------

struct SubgraphScratch {
  std::vector<std::int32_t> dist;
  std::vector<double> sigma;
  std::vector<double> d_i2i;
  std::vector<double> d_i2o;
  std::vector<double> d_o2o;
  LevelBuckets levels;

  // Observability tallies; the owner flushes them into the metrics registry
  // when the scratch retires (once per thread, so tallying is contention-free).
  std::uint64_t sources = 0;
  std::uint64_t traversed_arcs = 0;

  void ensure(Vertex n) {
    if (dist.size() < n) {
      dist.assign(n, kUnvisited);
      sigma.assign(n, 0.0);
      d_i2i.assign(n, 0.0);
      d_i2o.assign(n, 0.0);
      d_o2o.assign(n, 0.0);
    }
  }

  void reset_touched(const Subgraph& sg) {
    ++sources;
    for (Vertex v : levels.touched()) {
      traversed_arcs += sg.graph.out_degree(v);
      dist[v] = kUnvisited;
      sigma[v] = 0.0;
      d_i2i[v] = 0.0;
      d_i2o[v] = 0.0;
      d_o2o[v] = 0.0;
    }
    levels.clear();
    // Unreachable boundary APs keep their Phase-0 init values; clear them too.
    for (Vertex a : sg.boundary_aps) {
      d_i2o[a] = 0.0;
      d_o2o[a] = 0.0;
    }
  }
};

void subgraph_source_serial(const Subgraph& sg, Vertex s, SubgraphScratch& scratch,
                            std::vector<double>& bc) {
  const CsrGraph& g = sg.graph;
  auto& dist = scratch.dist;
  auto& sigma = scratch.sigma;
  auto& d_i2i = scratch.d_i2i;
  auto& d_i2o = scratch.d_i2o;
  auto& d_o2o = scratch.d_o2o;
  auto& levels = scratch.levels;

  const bool s_is_ap = sg.is_boundary_ap[s] != 0;
  const double size_o2i = s_is_ap ? static_cast<double>(sg.beta[s]) : 0.0;
  const double gamma_s = static_cast<double>(sg.gamma[s]);
  // Phantom-pendant multiplicities (2-core peel): pw[v] leaf children hang
  // off v at dist[v]+1 with sigma equal to v's, contributing pw[v] to the
  // i2i recursion exactly as the flat reduction's in-graph pendants would.
  const double* pw =
      sg.pendant_weight.empty() ? nullptr : sg.pendant_weight.data();

  // Phase 0: dependency seeds at boundary articulation points (other than
  // the source; paths ending at the source's own sub-DAG are accounted in
  // the sub-graphs on the other side of s).
  for (Vertex a : sg.boundary_aps) {
    if (a == s) continue;
    d_i2o[a] = static_cast<double>(sg.alpha[a]);
    if (s_is_ap) d_o2o[a] = size_o2i * static_cast<double>(sg.alpha[a]);
  }

  // Phase 1: forward BFS building sigma and level buckets.
  dist[s] = 0;
  sigma[s] = 1.0;
  levels.push(s);
  levels.finish_level();
  for (std::size_t current = 0; !levels.level(current).empty(); ++current) {
    // Index-based scan: push() may reallocate the level storage.
    const auto [begin, end] = levels.level_range(current);
    for (std::size_t idx = begin; idx < end; ++idx) {
      const Vertex v = levels.vertex(idx);
      for (Vertex w : g.out_neighbors(v)) {
        if (dist[w] == kUnvisited) {
          dist[w] = dist[v] + 1;
          levels.push(w);
        }
        if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
      }
    }
    levels.finish_level();
    if (levels.level(current + 1).empty()) break;
  }

  // Phase 2: backward sweep; level 0 (the source itself) is processed too,
  // because the pendant-derived contribution needs the recursion values at
  // v == s (Theorem 3).
  for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
    for (Vertex v : levels.level(lvl)) {
      double acc_i2i = pw != nullptr ? pw[v] : 0.0;
      double acc_i2o = d_i2o[v];
      double acc_o2o = d_o2o[v];
      for (Vertex w : g.out_neighbors(v)) {
        if (dist[w] != dist[v] + 1) continue;
        const double coef = sigma[v] / sigma[w];
        acc_i2i += coef * (1.0 + d_i2i[w]);
        acc_i2o += coef * d_i2o[w];
        if (s_is_ap) acc_o2o += coef * d_o2o[w];
      }
      d_i2i[v] = acc_i2i;
      d_i2o[v] = acc_i2o;
      d_o2o[v] = acc_o2o;
      if (v != s) {
        bc[v] += (1.0 + gamma_s) * (acc_i2i + acc_i2o) + size_o2i * acc_i2i +
                 acc_o2o;
      } else if (gamma_s > 0.0) {
        // Derived pendant DAGs: dependency of each pendant on its host.
        // Undirected pendants are reachable from the host, so the pair
        // (pendant, pendant) must be excluded (-1); a boundary-AP host
        // additionally separates the pendant from alpha(s) outside targets.
        double self = acc_i2i + acc_i2o;
        if (!g.directed()) self -= 1.0;
        if (s_is_ap) self += static_cast<double>(sg.alpha[s]);
        bc[s] += gamma_s * self;
      }
    }
  }
  scratch.reset_touched(sg);
}

void flush_kernel_tallies(std::uint64_t sources, std::uint64_t traversed_arcs,
                          std::uint64_t cas_retries = 0) {
  MetricsRegistry& m = metrics();
  m.counter("bc.apgre.sources").add(sources);
  m.counter("bc.apgre.traversed_arcs").add(traversed_arcs);
  if (cas_retries != 0) m.counter("bc.apgre.cas_retries").add(cas_retries);
}

std::vector<double> subgraph_bc_serial(const Subgraph& sg) {
  std::vector<double> bc(sg.num_vertices(), 0.0);
  SubgraphScratch scratch;
  scratch.ensure(sg.num_vertices());
  for (Vertex s : sg.roots) subgraph_source_serial(sg, s, scratch, bc);
  flush_kernel_tallies(scratch.sources, scratch.traversed_arcs);
  return bc;
}

// --------------------------------------------------------------------------
// Fine-grained parallel kernel: the same mathematics with a level-
// synchronous parallel forward phase (CAS vertex claims, atomic sigma) and
// a parallel successor-pull backward phase (single writer per delta cell).
// Used for the large ("top") sub-graphs — paper §4, Algorithm 2.
// --------------------------------------------------------------------------

struct ParallelScratch {
  std::vector<std::atomic<std::int32_t>> dist;
  std::vector<std::atomic<double>> sigma;
  std::vector<double> d_i2i;
  std::vector<double> d_i2o;
  std::vector<double> d_o2o;
  LevelBuckets levels;
  ThreadLocalFrontier next;
  // Direction-optimising forward phase (hybrid_inner): unvisited list and
  // per-thread split buffers.
  std::vector<Vertex> candidates;
  ThreadLocalFrontier remaining;

  // Observability tallies. The plain fields are only touched from the
  // serial sections between parallel regions; cas_retries is flushed once
  // per thread per forward region.
  std::uint64_t sources = 0;
  std::uint64_t traversed_arcs = 0;
  std::atomic<std::uint64_t> cas_retries{0};

  explicit ParallelScratch(Vertex n)
      : dist(n), sigma(n), d_i2i(n, 0.0), d_i2o(n, 0.0), d_o2o(n, 0.0) {
    for (Vertex v = 0; v < n; ++v) {
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
    }
  }
};

/// Published through `fine_region_ctx` so subgraph_source_parallel's
/// regions capture no enclosing locals (region-context idiom,
/// support/parallel.hpp).
struct FineRegionCtx {
  const Subgraph* sg = nullptr;
  ParallelScratch* st = nullptr;
  double* bc = nullptr;
  std::span<const Vertex> level;
  std::int32_t depth = 0;
  Vertex source = 0;
  bool s_is_ap = false;
  double size_o2i = 0.0;
  double gamma_s = 0.0;
};

FineRegionCtx* fine_region_ctx = nullptr;

/// Same idiom for apgre_bc's coarse-grained sub-graph region.
struct CoarseRegionCtx {
  const Decomposition* dec = nullptr;
  std::span<const std::size_t> items;
  double* bc = nullptr;
  Vertex num_global_vertices = 0;
  std::uint64_t* sources = nullptr;
  std::uint64_t* traversed_arcs = nullptr;
};

CoarseRegionCtx* coarse_region_ctx = nullptr;

void subgraph_source_parallel(const Subgraph& sg, Vertex s, ParallelScratch& st,
                              std::vector<double>& bc, bool hybrid_inner) {
  const CsrGraph& g = sg.graph;
  const bool s_is_ap = sg.is_boundary_ap[s] != 0;
  const double size_o2i = s_is_ap ? static_cast<double>(sg.beta[s]) : 0.0;
  const double gamma_s = static_cast<double>(sg.gamma[s]);

  FineRegionCtx ctx;
  ctx.sg = &sg;
  ctx.st = &st;
  ctx.bc = bc.data();
  ctx.source = s;
  ctx.s_is_ap = s_is_ap;
  ctx.size_o2i = size_o2i;
  ctx.gamma_s = gamma_s;
  fine_region_ctx = &ctx;

  for (Vertex a : sg.boundary_aps) {
    if (a == s) continue;
    st.d_i2o[a] = static_cast<double>(sg.alpha[a]);
    if (s_is_ap) st.d_o2o[a] = size_o2i * static_cast<double>(sg.alpha[a]);
  }

  st.dist[s].store(0, std::memory_order_relaxed);
  st.sigma[s].store(1.0, std::memory_order_relaxed);
  st.levels.push(s);
  st.levels.finish_level();
  const auto total_arcs = static_cast<double>(g.num_arcs());
  std::uint64_t frontier_out_edges = g.out_degree(s);
  double explored_arcs = 0.0;
  bool candidates_valid = false;

  for (std::size_t current = 0; !st.levels.level(current).empty(); ++current) {
    const auto frontier = st.levels.level(current);
    const auto depth = static_cast<std::int32_t>(current);
    explored_arcs += static_cast<double>(frontier_out_edges);
    // Beamer thresholds (alpha=15, beta=20), only when requested.
    const bool bottom_up =
        hybrid_inner &&
        static_cast<double>(frontier_out_edges) >
            (total_arcs - explored_arcs) / 15.0 &&
        static_cast<double>(frontier.size()) >
            static_cast<double>(g.num_vertices()) / 20.0;

    if (bottom_up) {
      if (!candidates_valid) {
        st.candidates.clear();
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          if (st.dist[v].load(std::memory_order_relaxed) == kUnvisited) {
            st.candidates.push_back(v);
          }
        }
        candidates_valid = true;
      }
      ctx.depth = depth;
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const FineRegionCtx& C = *fine_region_ctx;
        ParallelScratch& ps = *C.st;
        const CsrGraph& cg = C.sg->graph;
#pragma omp for schedule(static) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(ps.candidates.size());
             ++i) {
          const Vertex v = ps.candidates[static_cast<std::size_t>(i)];
          double paths = 0.0;
          for (Vertex u : cg.in_neighbors(v)) {
            if (ps.dist[u].load(std::memory_order_relaxed) == C.depth) {
              paths += ps.sigma[u].load(std::memory_order_relaxed);
            }
          }
          if (paths > 0.0) {
            ps.dist[v].store(C.depth + 1, std::memory_order_relaxed);
            ps.sigma[v].store(paths, std::memory_order_relaxed);
            ps.next.local().push_back(v);
          } else {
            ps.remaining.local().push_back(v);
          }
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
      st.candidates.clear();
      st.next.drain_into(st.levels);
      {
        // Re-collect the shrunken unvisited list from the split buffers.
        LevelBuckets tmp;
        st.remaining.drain_into(tmp);
        st.candidates.assign(tmp.touched().begin(), tmp.touched().end());
      }
    } else {
      ctx.level = frontier;
      ctx.depth = depth;
      omp_fork_fence();
#pragma omp parallel
      {
        omp_worker_entry_fence();
        const FineRegionCtx& C = *fine_region_ctx;
        ParallelScratch& ps = *C.st;
        const CsrGraph& cg = C.sg->graph;
        std::uint64_t lost_claims = 0;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
          const Vertex v = C.level[static_cast<std::size_t>(i)];
          for (Vertex w : cg.out_neighbors(v)) {
            std::int32_t expected = kUnvisited;
            if (ps.dist[w].compare_exchange_strong(expected, C.depth + 1,
                                                   std::memory_order_relaxed)) {
              ps.next.local().push_back(w);
              expected = C.depth + 1;
            } else if (expected == C.depth + 1) {
              ++lost_claims;
            }
            if (expected == C.depth + 1) {
              ps.sigma[w].fetch_add(ps.sigma[v].load(std::memory_order_relaxed),
                                    std::memory_order_relaxed);
            }
          }
        }
        if (lost_claims != 0) {
          ps.cas_retries.fetch_add(lost_claims, std::memory_order_relaxed);
        }
        omp_worker_exit_fence();
      }
      omp_join_fence();
      st.next.drain_into(st.levels);
      candidates_valid = false;  // stale after a push level
    }
    st.levels.finish_level();
    const auto fresh = st.levels.level(current + 1);
    if (fresh.empty()) break;
    frontier_out_edges = 0;
    for (Vertex v : fresh) frontier_out_edges += g.out_degree(v);
  }

  for (std::size_t lvl = st.levels.num_levels(); lvl-- > 0;) {
    ctx.level = st.levels.level(lvl);
    omp_fork_fence();
#pragma omp parallel
    {
      omp_worker_entry_fence();
      const FineRegionCtx& C = *fine_region_ctx;
      ParallelScratch& ps = *C.st;
      const CsrGraph& cg = C.sg->graph;
      // Phantom-pendant seed; see subgraph_source_serial.
      const double* pw = C.sg->pendant_weight.empty()
                             ? nullptr
                             : C.sg->pendant_weight.data();
#pragma omp for schedule(dynamic, 64) nowait
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(C.level.size()); ++i) {
        const Vertex v = C.level[static_cast<std::size_t>(i)];
        const auto dv = ps.dist[v].load(std::memory_order_relaxed);
        const double sv = ps.sigma[v].load(std::memory_order_relaxed);
        double acc_i2i = pw != nullptr ? pw[v] : 0.0;
        double acc_i2o = ps.d_i2o[v];
        double acc_o2o = ps.d_o2o[v];
        for (Vertex w : cg.out_neighbors(v)) {
          if (ps.dist[w].load(std::memory_order_relaxed) != dv + 1) continue;
          const double coef = sv / ps.sigma[w].load(std::memory_order_relaxed);
          acc_i2i += coef * (1.0 + ps.d_i2i[w]);
          acc_i2o += coef * ps.d_i2o[w];
          if (C.s_is_ap) acc_o2o += coef * ps.d_o2o[w];
        }
        ps.d_i2i[v] = acc_i2i;
        ps.d_i2o[v] = acc_i2o;
        ps.d_o2o[v] = acc_o2o;
        if (v != C.source) {
          C.bc[v] += (1.0 + C.gamma_s) * (acc_i2i + acc_i2o) +
                     C.size_o2i * acc_i2i + acc_o2o;
        } else if (C.gamma_s > 0.0) {
          double self = acc_i2i + acc_i2o;
          if (!cg.directed()) self -= 1.0;
          if (C.s_is_ap) self += static_cast<double>(C.sg->alpha[C.source]);
          C.bc[C.source] += C.gamma_s * self;
        }
      }
      omp_worker_exit_fence();
    }
    omp_join_fence();
  }
  fine_region_ctx = nullptr;

  ++st.sources;
  for (Vertex v : st.levels.touched()) {
    st.traversed_arcs += g.out_degree(v);
    st.dist[v].store(kUnvisited, std::memory_order_relaxed);
    st.sigma[v].store(0.0, std::memory_order_relaxed);
    st.d_i2i[v] = 0.0;
    st.d_i2o[v] = 0.0;
    st.d_o2o[v] = 0.0;
  }
  st.levels.clear();
  for (Vertex a : sg.boundary_aps) {
    st.d_i2o[a] = 0.0;
    st.d_o2o[a] = 0.0;
  }
}

std::vector<double> subgraph_bc_parallel(const Subgraph& sg, bool hybrid_inner) {
  // Region-context kernel: not reentrant, serialize whole invocations
  // (support/parallel.hpp). The scheduler-native variant below has no such
  // lock — that is the concurrent path.
  std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
  std::vector<double> bc(sg.num_vertices(), 0.0);
  ParallelScratch scratch(sg.num_vertices());
  for (Vertex s : sg.roots) {
    subgraph_source_parallel(sg, s, scratch, bc, hybrid_inner);
  }
  flush_kernel_tallies(scratch.sources, scratch.traversed_arcs,
                       scratch.cas_retries.load(std::memory_order_relaxed));
  return bc;
}

// --------------------------------------------------------------------------
// Scheduler-native fine-grained kernel: the same level-synchronous
// mathematics as subgraph_source_parallel, but the per-level loops run as
// nested WorkStealingScheduler::parallel_for calls instead of OpenMP
// regions. Plain lambdas capture the enclosing locals directly — the
// scheduler synchronises with std::atomic operations TSan understands, so
// neither the fence idiom nor the region-context pointer (nor the
// process-wide serialization they force) applies. This is the kernel the
// "dedicated" large/few-root sub-graphs dispatch from inside scheduler
// tasks, which is what lets N service clients drive N parallel solves
// concurrently.
// --------------------------------------------------------------------------

struct SchedScratch {
  std::vector<std::atomic<std::int32_t>> dist;
  std::vector<std::atomic<double>> sigma;
  std::vector<double> d_i2i;
  std::vector<double> d_i2o;
  std::vector<double> d_o2o;
  LevelBuckets levels;
  SlotLocalFrontier next;
  // Direction-optimising forward phase: unvisited list + per-slot splits.
  std::vector<Vertex> candidates;
  SlotLocalFrontier remaining;

  std::uint64_t sources = 0;
  std::uint64_t traversed_arcs = 0;
  std::atomic<std::uint64_t> cas_retries{0};

  SchedScratch(Vertex n, int slots)
      : dist(n), sigma(n), d_i2i(n, 0.0), d_i2o(n, 0.0), d_o2o(n, 0.0),
        next(slots), remaining(slots) {
    for (Vertex v = 0; v < n; ++v) {
      dist[v].store(kUnvisited, std::memory_order_relaxed);
      sigma[v].store(0.0, std::memory_order_relaxed);
    }
  }
};

/// Chunk size for a level of `n` vertices: big enough to amortize the
/// claim fetch_add, small enough to split a fat frontier across the pool.
std::int64_t level_grain(std::size_t n, int workers) {
  return std::max<std::int64_t>(
      64, static_cast<std::int64_t>(n) / (8 * static_cast<std::int64_t>(workers)));
}

void subgraph_source_scheduled(const Subgraph& sg, Vertex s, SchedScratch& st,
                               std::vector<double>& bc, bool hybrid_inner,
                               WorkStealingScheduler& sched) {
  const CsrGraph& g = sg.graph;
  const int workers = sched.num_workers();
  const bool s_is_ap = sg.is_boundary_ap[s] != 0;
  const double size_o2i = s_is_ap ? static_cast<double>(sg.beta[s]) : 0.0;
  const double gamma_s = static_cast<double>(sg.gamma[s]);

  for (Vertex a : sg.boundary_aps) {
    if (a == s) continue;
    st.d_i2o[a] = static_cast<double>(sg.alpha[a]);
    if (s_is_ap) st.d_o2o[a] = size_o2i * static_cast<double>(sg.alpha[a]);
  }

  st.dist[s].store(0, std::memory_order_relaxed);
  st.sigma[s].store(1.0, std::memory_order_relaxed);
  st.levels.push(s);
  st.levels.finish_level();
  const auto total_arcs = static_cast<double>(g.num_arcs());
  std::uint64_t frontier_out_edges = g.out_degree(s);
  double explored_arcs = 0.0;
  bool candidates_valid = false;

  for (std::size_t current = 0; !st.levels.level(current).empty(); ++current) {
    const auto frontier = st.levels.level(current);
    const auto depth = static_cast<std::int32_t>(current);
    explored_arcs += static_cast<double>(frontier_out_edges);
    // Beamer thresholds (alpha=15, beta=20), only when requested.
    const bool bottom_up =
        hybrid_inner &&
        static_cast<double>(frontier_out_edges) >
            (total_arcs - explored_arcs) / 15.0 &&
        static_cast<double>(frontier.size()) >
            static_cast<double>(g.num_vertices()) / 20.0;

    if (bottom_up) {
      if (!candidates_valid) {
        st.candidates.clear();
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          if (st.dist[v].load(std::memory_order_relaxed) == kUnvisited) {
            st.candidates.push_back(v);
          }
        }
        candidates_valid = true;
      }
      sched.parallel_for(
          0, static_cast<std::int64_t>(st.candidates.size()),
          level_grain(st.candidates.size(), workers),
          [&](std::int64_t lo, std::int64_t hi, int slot) {
            auto& next = st.next.local(slot);
            auto& remaining = st.remaining.local(slot);
            for (std::int64_t i = lo; i < hi; ++i) {
              const Vertex v = st.candidates[static_cast<std::size_t>(i)];
              double paths = 0.0;
              for (Vertex u : g.in_neighbors(v)) {
                if (st.dist[u].load(std::memory_order_relaxed) == depth) {
                  paths += st.sigma[u].load(std::memory_order_relaxed);
                }
              }
              if (paths > 0.0) {
                st.dist[v].store(depth + 1, std::memory_order_relaxed);
                st.sigma[v].store(paths, std::memory_order_relaxed);
                next.push_back(v);
              } else {
                remaining.push_back(v);
              }
            }
          });
      st.candidates.clear();
      st.next.drain_into(st.levels);
      {
        // Re-collect the shrunken unvisited list from the split buffers.
        LevelBuckets tmp;
        st.remaining.drain_into(tmp);
        st.candidates.assign(tmp.touched().begin(), tmp.touched().end());
      }
    } else {
      sched.parallel_for(
          0, static_cast<std::int64_t>(frontier.size()),
          level_grain(frontier.size(), workers),
          [&](std::int64_t lo, std::int64_t hi, int slot) {
            auto& next = st.next.local(slot);
            std::uint64_t lost_claims = 0;
            for (std::int64_t i = lo; i < hi; ++i) {
              const Vertex v = frontier[static_cast<std::size_t>(i)];
              for (Vertex w : g.out_neighbors(v)) {
                std::int32_t expected = kUnvisited;
                if (st.dist[w].compare_exchange_strong(
                        expected, depth + 1, std::memory_order_relaxed)) {
                  next.push_back(w);
                  expected = depth + 1;
                } else if (expected == depth + 1) {
                  ++lost_claims;
                }
                if (expected == depth + 1) {
                  st.sigma[w].fetch_add(
                      st.sigma[v].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
                }
              }
            }
            if (lost_claims != 0) {
              st.cas_retries.fetch_add(lost_claims, std::memory_order_relaxed);
            }
          });
      st.next.drain_into(st.levels);
      candidates_valid = false;  // stale after a push level
    }
    st.levels.finish_level();
    const auto fresh = st.levels.level(current + 1);
    if (fresh.empty()) break;
    frontier_out_edges = 0;
    for (Vertex v : fresh) frontier_out_edges += g.out_degree(v);
  }

  // Phantom-pendant seed; see subgraph_source_serial.
  const double* pw =
      sg.pendant_weight.empty() ? nullptr : sg.pendant_weight.data();
  for (std::size_t lvl = st.levels.num_levels(); lvl-- > 0;) {
    const auto level = st.levels.level(lvl);
    sched.parallel_for(
        0, static_cast<std::int64_t>(level.size()),
        level_grain(level.size(), workers),
        [&](std::int64_t lo, std::int64_t hi, int) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const Vertex v = level[static_cast<std::size_t>(i)];
            const auto dv = st.dist[v].load(std::memory_order_relaxed);
            const double sv = st.sigma[v].load(std::memory_order_relaxed);
            double acc_i2i = pw != nullptr ? pw[v] : 0.0;
            double acc_i2o = st.d_i2o[v];
            double acc_o2o = st.d_o2o[v];
            for (Vertex w : g.out_neighbors(v)) {
              if (st.dist[w].load(std::memory_order_relaxed) != dv + 1) continue;
              const double coef =
                  sv / st.sigma[w].load(std::memory_order_relaxed);
              acc_i2i += coef * (1.0 + st.d_i2i[w]);
              acc_i2o += coef * st.d_i2o[w];
              if (s_is_ap) acc_o2o += coef * st.d_o2o[w];
            }
            st.d_i2i[v] = acc_i2i;
            st.d_i2o[v] = acc_i2o;
            st.d_o2o[v] = acc_o2o;
            if (v != s) {
              bc[v] += (1.0 + gamma_s) * (acc_i2i + acc_i2o) +
                       size_o2i * acc_i2i + acc_o2o;
            } else if (gamma_s > 0.0) {
              double self = acc_i2i + acc_i2o;
              if (!g.directed()) self -= 1.0;
              if (s_is_ap) self += static_cast<double>(sg.alpha[s]);
              bc[s] += gamma_s * self;
            }
          }
        });
  }

  ++st.sources;
  for (Vertex v : st.levels.touched()) {
    st.traversed_arcs += g.out_degree(v);
    st.dist[v].store(kUnvisited, std::memory_order_relaxed);
    st.sigma[v].store(0.0, std::memory_order_relaxed);
    st.d_i2i[v] = 0.0;
    st.d_i2o[v] = 0.0;
    st.d_o2o[v] = 0.0;
  }
  st.levels.clear();
  for (Vertex a : sg.boundary_aps) {
    st.d_i2o[a] = 0.0;
    st.d_o2o[a] = 0.0;
  }
}

std::vector<double> subgraph_bc_scheduled(const Subgraph& sg, bool hybrid_inner,
                                          WorkStealingScheduler& sched) {
  std::vector<double> bc(sg.num_vertices(), 0.0);
  SchedScratch scratch(sg.num_vertices(), sched.num_slots());
  for (Vertex s : sg.roots) {
    subgraph_source_scheduled(sg, s, scratch, bc, hybrid_inner, sched);
  }
  flush_kernel_tallies(scratch.sources, scratch.traversed_arcs,
                       scratch.cas_retries.load(std::memory_order_relaxed));
  return bc;
}

/// Default pool options (threads == 0, random stealing) share the
/// process-wide pool, so concurrent solves arbitrate the same cores
/// instead of oversubscribing with private pools; anything pinned
/// (explicit thread count, sequential stealing) gets a private scheduler
/// with exactly those options.
WorkStealingScheduler& select_scheduler(
    const SchedulerOptions& sched,
    std::optional<WorkStealingScheduler>& storage) {
  if (sched.threads == 0 && sched.steal_policy == StealPolicy::kRandom) {
    return WorkStealingScheduler::shared();
  }
  storage.emplace(sched);
  return *storage;
}

/// Arc threshold above which a sub-graph is "large" (fine-grained tier).
EdgeId fine_grain_cutoff(const ApgreOptions& opts, EdgeId total_arcs) {
  return std::max<EdgeId>(
      opts.fine_grain_min_arcs,
      static_cast<EdgeId>(opts.fine_grain_fraction * static_cast<double>(total_arcs)));
}

// --------------------------------------------------------------------------
// Flat scoring path (the pre-scheduler driver, kept reachable with
// SchedulerOptions::enabled = false): the top sub-graph and every other
// large sub-graph run one at a time with the fine-grained kernel; the rest
// are distributed across an OpenMP loop.
// --------------------------------------------------------------------------

std::vector<double> score_flat(const CsrGraph& g, const Decomposition& dec,
                               const ApgreOptions& opts, ApgreStats& stats) {
  // The coarse loop below and subgraph_bc_parallel are region-context
  // OpenMP kernels; serialize the whole invocation against concurrent
  // callers (recursive: subgraph_bc_parallel re-locks).
  std::lock_guard<std::recursive_mutex> lock(legacy_omp_kernel_mutex());
  const EdgeId fine_cutoff = fine_grain_cutoff(opts, g.num_arcs());

  std::vector<std::size_t> fine;
  std::vector<std::size_t> coarse;
  // With a single thread the fine-grained kernel only adds atomic-CAS
  // overhead; route everything through the serial kernel instead. The top
  // sub-graph is always processed on its own so its share of the runtime
  // is measured directly (paper Figure 8).
  const bool inner_parallel_pays = num_threads() > 1;
  for (std::size_t i = 0; i < dec.subgraphs.size(); ++i) {
    if (i == dec.top_subgraph) continue;
    const bool fine_grained =
        inner_parallel_pays && dec.subgraphs[i].num_arcs() >= fine_cutoff;
    (fine_grained ? fine : coarse).push_back(i);
  }

  std::vector<double> bc(g.num_vertices(), 0.0);
  auto merge_local = [&dec](std::vector<double>& into, std::size_t sgi,
                            const std::vector<double>& local) {
    const Subgraph& sg = dec.subgraphs[sgi];
    for (Vertex v = 0; v < sg.num_vertices(); ++v) {
      into[sg.to_global[v]] += local[v];
    }
  };

  if (!dec.subgraphs.empty()) {
    APGRE_TRACE_SPAN("apgre/top_bc");
    ScopedTimer t(stats.top_bc_seconds);
    const Subgraph& top = dec.subgraphs[dec.top_subgraph];
    const bool parallel_top =
        inner_parallel_pays && top.num_arcs() >= fine_cutoff;
    merge_local(bc, dec.top_subgraph,
                apgre_subgraph_bc(top, parallel_top, opts.hybrid_inner));
  }
  {
    APGRE_TRACE_SPAN("apgre/rest_bc");
    ScopedTimer t(stats.rest_bc_seconds);
    for (std::size_t sgi : fine) {
      merge_local(bc, sgi,
                  subgraph_bc_parallel(dec.subgraphs[sgi], opts.hybrid_inner));
    }
    std::uint64_t coarse_sources = 0;
    std::uint64_t coarse_traversed_arcs = 0;
    CoarseRegionCtx cctx;
    cctx.dec = &dec;
    cctx.items = coarse;
    cctx.bc = bc.data();
    cctx.num_global_vertices = g.num_vertices();
    cctx.sources = &coarse_sources;
    cctx.traversed_arcs = &coarse_traversed_arcs;
    coarse_region_ctx = &cctx;
    omp_fork_fence();
#pragma omp parallel
    {
      omp_worker_entry_fence();
      const CoarseRegionCtx& C = *coarse_region_ctx;
      // Per-thread global accumulation buffer: sub-graphs share vertices
      // only at articulation points, but a private buffer avoids all races.
      std::vector<double> thread_bc(C.num_global_vertices, 0.0);
      SubgraphScratch scratch;
      std::vector<double> local;
#pragma omp for schedule(dynamic, 8) nowait
      for (std::int64_t idx = 0; idx < static_cast<std::int64_t>(C.items.size());
           ++idx) {
        const Subgraph& sg =
            C.dec->subgraphs[C.items[static_cast<std::size_t>(idx)]];
        scratch.ensure(sg.num_vertices());
        local.assign(sg.num_vertices(), 0.0);
        for (Vertex s : sg.roots) subgraph_source_serial(sg, s, scratch, local);
        for (Vertex v = 0; v < sg.num_vertices(); ++v) {
          thread_bc[sg.to_global[v]] += local[v];
        }
      }
#pragma omp critical(apgre_bc_merge)
      {
        omp_critical_entry_fence();
        for (Vertex v = 0; v < C.num_global_vertices; ++v) {
          C.bc[v] += thread_bc[v];
        }
        *C.sources += scratch.sources;
        *C.traversed_arcs += scratch.traversed_arcs;
        omp_critical_exit_fence();
      }
      omp_worker_exit_fence();
    }
    omp_join_fence();
    coarse_region_ctx = nullptr;
    flush_kernel_tallies(coarse_sources, coarse_traversed_arcs);
  }
  return bc;
}

// --------------------------------------------------------------------------
// Scheduled scoring path: every (sub-graph, root-batch) pair becomes a task
// on the work-stealing scheduler (support/sched/scheduler.hpp). Sub-graphs
// too large to split profitably become *dedicated* tasks that run the
// scheduler-native level-synchronous kernel, opening nested parallel_for
// calls from inside their task body — the whole run is one scheduler
// invocation, so concurrent solves interleave freely (no process-wide
// lock). The kernel per tier is chosen adaptively from size / root-count
// heuristics and the choice is recorded in ApgreStats.
// --------------------------------------------------------------------------

std::vector<double> score_scheduled(const CsrGraph& g, const Decomposition& dec,
                                    const ApgreOptions& opts,
                                    const SchedulerOptions& sched,
                                    ApgreStats& stats) {
  std::optional<WorkStealingScheduler> private_sched;
  WorkStealingScheduler& scheduler = select_scheduler(sched, private_sched);
  const int workers = scheduler.num_workers();
  const int slots = scheduler.num_slots();
  const EdgeId fine_cutoff = fine_grain_cutoff(opts, g.num_arcs());
  const bool inner_parallel_pays = workers > 1;

  // Classify: `dedicated` sub-graphs are large but have too few roots to
  // split into enough batches to load-balance — fine-grained parallelism
  // inside one source is the only lever left. Large sub-graphs with many
  // roots split into root batches; everything else is one serial task.
  struct Piece {
    std::size_t sgi;
    std::size_t root_begin;
    std::size_t root_end;
    std::uint64_t cost;  ///< ~arcs * roots, for largest-first distribution
    bool batch;          ///< part of a split sub-graph (vs whole)
  };
  std::vector<std::size_t> dedicated;
  std::vector<Piece> pieces;
  for (std::size_t i = 0; i < dec.subgraphs.size(); ++i) {
    const Subgraph& sg = dec.subgraphs[i];
    const std::size_t roots = sg.roots.size();
    if (roots == 0) continue;
    const bool large = sg.num_arcs() >= fine_cutoff;
    if (large && sched.adaptive_kernel && inner_parallel_pays &&
        roots < 2 * static_cast<std::size_t>(workers)) {
      dedicated.push_back(i);
      continue;
    }
    std::size_t grain = roots;
    if (large) {
      grain = sched.grain > 0
                  ? static_cast<std::size_t>(sched.grain)
                  : std::max<std::size_t>(
                        1, roots / (4 * static_cast<std::size_t>(workers)));
    }
    const std::uint64_t arc_cost = std::max<std::uint64_t>(sg.num_arcs(), 1);
    for (std::size_t b = 0; b < roots; b += grain) {
      const std::size_t e = std::min(roots, b + grain);
      pieces.push_back(
          {i, b, e, arc_cost * static_cast<std::uint64_t>(e - b), large});
    }
  }
  // Largest pieces first: run() deals tasks round-robin, and thieves steal
  // from the victim's old end, so big work spreads out before the tail.
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.cost > b.cost; });

  std::vector<double> bc(g.num_vertices(), 0.0);

  // Per-slot accumulation state. Sub-graphs overlap only at articulation
  // points, but giving each slot a private global-id buffer (lazily
  // allocated on first use) makes every task body race-free without locks.
  // Sized num_slots(): external participant threads get slots beyond the
  // pool workers. Safe under nesting too — a dedicated task's nested
  // parallel_for may pop another task of this run onto the same slot, but
  // that task runs to completion before the wait loop resumes, and the
  // dedicated task touches its WorkerBuf only after its kernel finishes.
  struct WorkerBuf {
    std::vector<double> bc;
    SubgraphScratch scratch;
    std::vector<double> local;
  };
  std::vector<WorkerBuf> bufs(static_cast<std::size_t>(slots));
  const Vertex n_global = g.num_vertices();

  // Dedicated sub-graphs run inside scheduler tasks like everything else;
  // their wall time is summed here so the Figure-8 top/rest breakdown
  // survives the move off the serial pre-pass.
  std::atomic<double> dedicated_seconds{0.0};

  std::vector<WorkStealingScheduler::Task> tasks;
  tasks.reserve(dedicated.size() + pieces.size());
  for (std::size_t sgi : dedicated) {
    tasks.push_back([&dec, &bufs, &scheduler, &opts, &dedicated_seconds,
                     n_global, sgi](int slot) {
      Timer timer;
      const Subgraph& sg = dec.subgraphs[sgi];
      // Dense low-diameter sub-graphs flip to the direction-optimising
      // forward phase even when the caller left hybrid_inner off.
      const bool hybrid =
          opts.hybrid_inner ||
          (sg.num_vertices() > 0 &&
           sg.num_arcs() / static_cast<EdgeId>(sg.num_vertices()) >= 16);
      const std::vector<double> local =
          subgraph_bc_scheduled(sg, hybrid, scheduler);
      WorkerBuf& wb = bufs[static_cast<std::size_t>(slot)];
      if (wb.bc.empty()) wb.bc.assign(n_global, 0.0);
      for (Vertex v = 0; v < sg.num_vertices(); ++v) {
        wb.bc[sg.to_global[v]] += local[v];
      }
      dedicated_seconds.fetch_add(timer.seconds(), std::memory_order_relaxed);
    });
  }
  for (const Piece& p : pieces) {
    tasks.push_back([&dec, &bufs, n_global, p](int slot) {
      WorkerBuf& wb = bufs[static_cast<std::size_t>(slot)];
      if (wb.bc.empty()) wb.bc.assign(n_global, 0.0);
      const Subgraph& sg = dec.subgraphs[p.sgi];
      wb.scratch.ensure(sg.num_vertices());
      wb.local.assign(sg.num_vertices(), 0.0);
      for (std::size_t r = p.root_begin; r < p.root_end; ++r) {
        subgraph_source_serial(sg, sg.roots[r], wb.scratch, wb.local);
      }
      for (Vertex v = 0; v < sg.num_vertices(); ++v) {
        wb.bc[sg.to_global[v]] += wb.local[v];
      }
    });
  }

  SchedulerStats run_stats;
  {
    APGRE_TRACE_SPAN("apgre/rest_bc");
    ScopedTimer t(stats.rest_bc_seconds);
    run_stats = scheduler.run(std::move(tasks));
    for (WorkerBuf& wb : bufs) {
      if (wb.bc.empty()) continue;
      for (Vertex v = 0; v < n_global; ++v) bc[v] += wb.bc[v];
    }
  }
  stats.top_bc_seconds += dedicated_seconds.load(std::memory_order_relaxed);
  for (const WorkerBuf& wb : bufs) {
    if (wb.scratch.sources != 0) {
      flush_kernel_tallies(wb.scratch.sources, wb.scratch.traversed_arcs);
    }
  }

  stats.num_fine_subgraphs = dedicated.size();
  for (const Piece& p : pieces) {
    if (p.batch && (p.root_begin != 0 || p.root_end != dec.subgraphs[p.sgi].roots.size())) {
      ++stats.num_batch_tasks;
    } else {
      ++stats.num_subgraph_tasks;
    }
  }
  stats.sched_tasks = run_stats.tasks;
  stats.sched_steals = run_stats.steals;
  stats.sched_idle_seconds = run_stats.idle_seconds;
  return bc;
}

}  // namespace

std::vector<double> apgre_subgraph_bc(const Subgraph& sg, bool parallel_inner,
                                      bool hybrid_inner) {
  return parallel_inner ? subgraph_bc_parallel(sg, hybrid_inner)
                        : subgraph_bc_serial(sg);
}

std::vector<double> apgre_subgraph_bc_scheduled(const Subgraph& sg,
                                                bool hybrid_inner,
                                                const SchedulerOptions& sched) {
  std::optional<WorkStealingScheduler> private_sched;
  WorkStealingScheduler& scheduler = select_scheduler(sched, private_sched);
  return subgraph_bc_scheduled(sg, hybrid_inner, scheduler);
}

std::vector<double> apgre_bc_with_decomposition(const CsrGraph& g,
                                                const Decomposition& dec,
                                                const ApgreOptions& opts,
                                                ApgreStats* stats,
                                                const SchedulerOptions& sched) {
  APGRE_TRACE_SPAN("apgre/score");
  ApgreStats local;
  if (stats != nullptr) {
    // The caller reports what it spent on decompose + reach + peel; a
    // Solver cache hit legitimately reports zero here.
    local.partition_seconds = stats->partition_seconds;
    local.reach_seconds = stats->reach_seconds;
    local.peel_seconds = stats->peel_seconds;
    local.peeled_vertices = stats->peeled_vertices;
    local.core_fraction = stats->core_fraction;
  }

  Timer score_timer;
  std::vector<double> bc = sched.enabled
                               ? score_scheduled(g, dec, opts, sched, local)
                               : score_flat(g, dec, opts, local);
  local.total_seconds = local.peel_seconds + local.partition_seconds +
                        local.reach_seconds + score_timer.seconds();

  local.num_subgraphs = dec.subgraphs.size();
  local.num_articulation_points = dec.num_articulation_points;
  local.num_pendants_removed = dec.num_pendants_removed;
  if (!dec.subgraphs.empty()) {
    const Subgraph& top = dec.subgraphs[dec.top_subgraph];
    local.top_vertices = top.num_vertices();
    local.top_arcs = top.num_arcs();
  }
  const auto work = dec.work_model(g.num_arcs());
  local.partial_redundancy = work.partial_redundancy;
  local.total_redundancy = work.total_redundancy;
  if (stats != nullptr) *stats = local;

  MetricsRegistry& m = metrics();
  m.counter("apgre.runs").add(1);
  m.counter("apgre.subgraphs").add(local.num_subgraphs);
  m.counter("apgre.articulation_points").add(local.num_articulation_points);
  m.counter("apgre.pendants_removed").add(local.num_pendants_removed);
  m.gauge("apgre.partition_seconds").set(local.partition_seconds);
  m.gauge("apgre.reach_seconds").set(local.reach_seconds);
  m.gauge("apgre.top_bc_seconds").set(local.top_bc_seconds);
  m.gauge("apgre.rest_bc_seconds").set(local.rest_bc_seconds);
  m.gauge("apgre.total_seconds").set(local.total_seconds);
  m.gauge("apgre.partial_redundancy").set(local.partial_redundancy);
  m.gauge("apgre.total_redundancy").set(local.total_redundancy);
  Histogram& hv = m.histogram("apgre.subgraph_vertices");
  Histogram& ha = m.histogram("apgre.subgraph_arcs");
  for (const Subgraph& sg : dec.subgraphs) {
    hv.observe(sg.num_vertices());
    ha.observe(sg.num_arcs());
  }
  return bc;
}

std::vector<double> apgre_bc(const CsrGraph& g, const ApgreOptions& opts,
                             ApgreStats* stats, const SchedulerOptions& sched) {
  APGRE_TRACE_SPAN("apgre/total");
  ApgreStats local;

  // Step 0 (optional): peel the tree fringe down to the 2-core and solve
  // the core-only reduction. Each anchor absorbs its peeled subtrees as a
  // derived pendant multiplicity — a gamma weight plus weighted alpha/beta
  // reach counts — so the core-side Brandes runs never traverse the fringe
  // yet produce the same core totals as the unpeeled graph; the peeled
  // vertices' own scores are closed-form. Directed graphs bypass inside
  // two_core_peel.
  if (opts.partition.peel_two_core && !g.directed()) {
    double peel_seconds = 0.0;
    PeelResult peel;
    {
      ScopedTimer t(peel_seconds);
      peel = two_core_peel(g);
    }
    if (peel.num_peeled > 0) {
      CsrGraph core;
      {
        ScopedTimer t(peel_seconds);
        core = peeled_core_reduction(g, peel);
      }
      PartitionOptions popts = opts.partition;
      popts.peel_two_core = false;
      popts.compute_reach = false;
      Decomposition dec;
      {
        APGRE_TRACE_SPAN("apgre/decompose");
        ScopedTimer t(local.partition_seconds);
        dec = decompose(core, popts);
        inject_pendant_weights(dec, peel.anchor_weight);
      }
      {
        APGRE_TRACE_SPAN("apgre/reach");
        ScopedTimer t(local.reach_seconds);
        compute_reach_counts(core, dec, opts.partition.reach,
                             &peel.anchor_weight);
      }
      ApgreOptions inner = opts;
      inner.partition = popts;
      local.peel_seconds = peel_seconds;
      local.peeled_vertices = peel.num_peeled;
      local.core_fraction = peel.core_fraction();
      std::vector<double> bc =
          apgre_bc_with_decomposition(core, dec, inner, &local, sched);
      expand_peeled_scores(peel, bc);
      metrics().gauge("graph.peel.seconds").set(peel_seconds);
      if (stats != nullptr) *stats = local;
      return bc;
    }
  }

  // Step 1: decomposition (timed separately from reach counting so the
  // Figure-8 breakdown can report both).
  PartitionOptions popts = opts.partition;
  popts.compute_reach = false;
  Decomposition dec;
  {
    APGRE_TRACE_SPAN("apgre/decompose");
    ScopedTimer t(local.partition_seconds);
    dec = decompose(g, popts);
  }
  // Step 2: alpha/beta counting.
  {
    APGRE_TRACE_SPAN("apgre/reach");
    ScopedTimer t(local.reach_seconds);
    compute_reach_counts(g, dec, opts.partition.reach);
  }
  // Step 3: scoring (flat or scheduled) + stats/metrics.
  std::vector<double> bc = apgre_bc_with_decomposition(g, dec, opts, &local, sched);
  if (stats != nullptr) *stats = local;
  return bc;
}

}  // namespace apgre
