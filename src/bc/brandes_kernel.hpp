// Internal: the per-source Brandes iteration shared by the serial baseline,
// the coarse source-parallel algorithm and the sampling estimator. Each
// caller owns a BrandesScratch (and, when parallel, a private bc buffer).
#pragma once

#include <cstdint>
#include <vector>

#include "bc/frontier.hpp"
#include "graph/csr.hpp"
#include "support/timer.hpp"

namespace apgre::detail {

inline constexpr std::int32_t kUnvisited = -1;

/// Per-source working set, reset in O(touched) between sources.
struct BrandesScratch {
  std::vector<std::int32_t> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  LevelBuckets levels;

  // Observability tallies accumulated across sources; the driving algorithm
  // flushes them into the metrics registry once per run (the scratch is
  // per-thread, so tallying here stays contention-free).
  std::uint64_t sources = 0;
  std::uint64_t traversed_arcs = 0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;

  explicit BrandesScratch(Vertex n)
      : dist(n, kUnvisited), sigma(n, 0.0), delta(n, 0.0) {}

  void reset_touched() {
    for (Vertex v : levels.touched()) {
      dist[v] = kUnvisited;
      sigma[v] = 0.0;
      delta[v] = 0.0;
    }
    levels.clear();
  }
};

/// One complete Brandes iteration from `s`: forward BFS building distance
/// labels / path counts / level buckets, then a successor-scan backward
/// sweep adding `weight * delta_s(v)` into `bc`.
inline void brandes_iteration(const CsrGraph& g, Vertex s, double weight,
                              BrandesScratch& scratch, std::vector<double>& bc) {
  auto& dist = scratch.dist;
  auto& sigma = scratch.sigma;
  auto& delta = scratch.delta;
  auto& levels = scratch.levels;

  dist[s] = 0;
  sigma[s] = 1.0;
  levels.push(s);
  levels.finish_level();
  Timer phase_timer;
  for (std::size_t current = 0; !levels.level(current).empty(); ++current) {
    // Index-based scan: push() grows the underlying array, so spans into
    // the current level would dangle.
    const auto [begin, end] = levels.level_range(current);
    for (std::size_t idx = begin; idx < end; ++idx) {
      const Vertex v = levels.vertex(idx);
      for (Vertex w : g.out_neighbors(v)) {
        if (dist[w] == kUnvisited) {
          dist[w] = dist[v] + 1;
          levels.push(w);
        }
        if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
      }
    }
    levels.finish_level();
    if (levels.level(current + 1).empty()) break;
  }
  scratch.forward_seconds += phase_timer.seconds();

  phase_timer.reset();
  for (std::size_t lvl = levels.num_levels(); lvl-- > 0;) {
    for (Vertex v : levels.level(lvl)) {
      double acc = 0.0;
      for (Vertex w : g.out_neighbors(v)) {
        if (dist[w] == dist[v] + 1) acc += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      delta[v] = acc;
      if (v != s) bc[v] += weight * acc;
    }
  }
  scratch.backward_seconds += phase_timer.seconds();

  ++scratch.sources;
  for (Vertex v : levels.touched()) scratch.traversed_arcs += g.out_degree(v);
  scratch.reset_touched();
}

}  // namespace apgre::detail
