// Definition-based betweenness oracle in O(|V|^3) time and O(|V|^2) space:
//   BC(v) = sum over (s, t) with dist(s,v) + dist(v,t) == dist(s,t) of
//           sigma_sv * sigma_vt / sigma_st
// using shortest-path property 2 of the paper (sigma_st(v) factorises).
// Deliberately shares no code with Brandes so the test suite has an
// independent ground truth. Intended for graphs up to a few hundred
// vertices.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace apgre {

std::vector<double> naive_bc(const CsrGraph& g);

}  // namespace apgre
