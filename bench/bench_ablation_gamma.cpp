// Ablation A3: total-redundancy elimination (gamma / pendant derivation)
// on vs off. Pendant-heavy graphs (email/social analogues) should lose a
// large share of their speedup without it; road graphs barely change.
#include <cstdio>

#include "bc/apgre.hpp"
#include "bench_util.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Graph", "Pendants", "APGRE s (gamma on)", "APGRE s (gamma off)",
               "Gamma speedup"});
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();

    ApgreOptions on;
    ApgreStats stats_on;
    apgre_bc(g, on, &stats_on);

    ApgreOptions off;
    off.partition.total_redundancy = false;
    ApgreStats stats_off;
    apgre_bc(g, off, &stats_off);

    table.row()
        .cell(static_cast<std::string>(w.id))
        .cell(static_cast<std::uint64_t>(stats_on.num_pendants_removed))
        .cell(stats_on.total_seconds, 3)
        .cell(stats_off.total_seconds, 3)
        .cell(stats_on.total_seconds > 0.0
                  ? stats_off.total_seconds / stats_on.total_seconds
                  : 0.0,
              2);
    std::fflush(stdout);
  }
  print_table("Ablation A3: total-redundancy (gamma) elimination on/off", table);
  return 0;
}
