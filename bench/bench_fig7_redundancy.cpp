// Paper Figure 7: breakdown of Brandes' BC work into the fraction removed
// as partial redundancy (common sub-DAG reuse), total redundancy (pendant
// derivation) and the remaining essential work. Work model: source x arc
// units (DESIGN.md §5); the paper reports e.g. 80% partial redundancy for
// WikiTalk and single-digit percentages for road graphs.
#include <cstdio>

#include "bcc/partition.hpp"
#include "bench_util.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Graph", "Partial %", "Total %", "Essential %"});
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();
    const Decomposition dec = decompose(g);
    const auto model = dec.work_model(g.num_arcs());
    table.row()
        .cell(w.id)
        .cell(100.0 * model.partial_redundancy, 1)
        .cell(100.0 * model.total_redundancy, 1)
        .cell(100.0 * (1.0 - model.partial_redundancy - model.total_redundancy), 1);
  }
  print_table("Figure 7: redundancy breakdown of the BC computation", table);
  return 0;
}
