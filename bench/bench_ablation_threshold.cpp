// Ablation A1: the BCC merge threshold of Algorithm 1. Small thresholds
// keep many tiny sub-graphs (more alpha/beta bookkeeping, more boundary
// APs); large thresholds fold everything into fewer, bigger sub-graphs
// (less reuse). Sweeps the knob and reports decomposition shape + APGRE
// runtime on three structurally distinct analogues.
#include <cstdio>

#include "bc/apgre.hpp"
#include "bench_util.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  const auto workloads = selected_workloads();
  const std::vector<std::size_t> picks{0, 5, 10};  // email, dblp, road
  const std::vector<Vertex> thresholds{2, 8, 32, 128, 512};

  Table table({"Graph", "Threshold", "#SG", "Top #V", "Partial %", "Total %",
               "APGRE s"});
  for (std::size_t pick : picks) {
    if (pick >= workloads.size()) continue;
    const Workload& w = workloads[pick];
    const CsrGraph g = w.build();
    for (Vertex threshold : thresholds) {
      ApgreOptions opts;
      opts.partition.merge_threshold = threshold;
      ApgreStats stats;
      apgre_bc(g, opts, &stats);
      table.row()
          .cell(w.id)
          .cell(static_cast<std::uint64_t>(threshold))
          .cell(static_cast<std::uint64_t>(stats.num_subgraphs))
          .cell(static_cast<std::uint64_t>(stats.top_vertices))
          .cell(100.0 * stats.partial_redundancy, 1)
          .cell(100.0 * stats.total_redundancy, 1)
          .cell(stats.total_seconds, 3);
      std::fflush(stdout);
    }
  }
  print_table("Ablation A1: merge-threshold sweep", table);
  return 0;
}
