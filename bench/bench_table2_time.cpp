// Paper Table 2 (execution time in seconds, all algorithms x all graphs)
// and Figure 6 (speedup over serial). Entries whose estimated cost exceeds
// the bench budget print "-", as in the paper; APGRE_FULL=1 runs them all.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "support/stats.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  const auto algorithms = comparison_algorithms();
  std::vector<std::string> header{"Graph"};
  for (Algorithm a : algorithms) header.push_back(algorithm_name(a));
  Table time_table(header);
  Table speedup_table(header);

  std::map<Algorithm, std::vector<double>> speedups;
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();
    time_table.row().cell(w.id);
    speedup_table.row().cell(w.id);
    double serial_seconds = 0.0;
    for (Algorithm a : algorithms) {
      const auto outcome = timed_run(g, a);
      if (!outcome) {
        time_table.dash();
        speedup_table.dash();
        continue;
      }
      if (a == Algorithm::kBrandesSerial) serial_seconds = outcome->seconds;
      time_table.cell(outcome->seconds, 3);
      if (serial_seconds > 0.0 && outcome->seconds > 0.0) {
        const double speedup = serial_seconds / outcome->seconds;
        speedup_table.cell(speedup, 2);
        if (a != Algorithm::kBrandesSerial) speedups[a].push_back(speedup);
      } else {
        speedup_table.dash();
      }
    }
    std::fflush(stdout);
  }

  speedup_table.row().cell("geo-mean");
  for (Algorithm a : algorithms) {
    if (a == Algorithm::kBrandesSerial) {
      speedup_table.cell(1.0, 2);
    } else if (!speedups[a].empty()) {
      speedup_table.cell(geometric_mean(speedups[a]), 2);
    } else {
      speedup_table.dash();
    }
  }

  print_table("Table 2: execution time in seconds", time_table);
  print_table("Figure 6: speedup relative to serial Brandes", speedup_table);
  return 0;
}
