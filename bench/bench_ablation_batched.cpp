// Ablation A7: the algebraic (Combinatorial-BLAS-style, Buluc & Gilbert)
// 64-wide batched Brandes against source-at-a-time Brandes and APGRE.
// Batching amortises adjacency traversal but cannot skip redundant
// sub-DAGs — the comparison shows both effects.
#include <cstdio>

#include "bc/algebraic.hpp"
#include "bc/apgre.hpp"
#include "bc/brandes.hpp"
#include "bench_util.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Graph", "Serial s", "Batched s", "APGRE s", "Batched speedup",
               "APGRE speedup"});
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();

    Timer serial_timer;
    const auto serial = brandes_bc(g);
    const double serial_s = serial_timer.seconds();

    Timer batched_timer;
    const auto batched = algebraic_bc(g);
    const double batched_s = batched_timer.seconds();

    Timer apgre_timer;
    const auto fast = apgre_bc(g);
    const double apgre_s = apgre_timer.seconds();
    (void)serial;
    (void)batched;
    (void)fast;

    table.row()
        .cell(w.id)
        .cell(serial_s, 3)
        .cell(batched_s, 3)
        .cell(apgre_s, 3)
        .cell(batched_s > 0.0 ? serial_s / batched_s : 0.0, 2)
        .cell(apgre_s > 0.0 ? serial_s / apgre_s : 0.0, 2);
    std::fflush(stdout);
  }
  print_table("Ablation A7: batched (algebraic) Brandes vs APGRE", table);
  return 0;
}
