// Paper Figure 8: where APGRE's own time goes — graph partition, alpha/beta
// counting (the "extra computations", 1.6%-25.7% in the paper) and the BC
// computation, split into the dominant top sub-graph(s) and the rest.
#include <cstdio>

#include "bc/apgre.hpp"
#include "bench_util.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Graph", "Total s", "Partition %", "Alpha/Beta %", "Top-SG BC %",
               "Rest BC %", "#SG", "Top #V"});
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();
    ApgreStats stats;
    apgre_bc(g, {}, &stats);
    const double total = stats.total_seconds > 0.0 ? stats.total_seconds : 1e-12;
    table.row()
        .cell(w.id)
        .cell(stats.total_seconds, 3)
        .cell(100.0 * stats.partition_seconds / total, 1)
        .cell(100.0 * stats.reach_seconds / total, 1)
        .cell(100.0 * stats.top_bc_seconds / total, 1)
        .cell(100.0 * stats.rest_bc_seconds / total, 1)
        .cell(static_cast<std::uint64_t>(stats.num_subgraphs))
        .cell(static_cast<std::uint64_t>(stats.top_vertices));
    std::fflush(stdout);
  }
  print_table("Figure 8: APGRE execution-time breakdown", table);
  return 0;
}
