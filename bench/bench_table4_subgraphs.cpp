// Paper Table 4: decomposition shape — number of sub-graphs and the sizes
// of the top three, with the top sub-graph's share of the whole graph
// (the paper's V/G.V and E/G.E columns).
#include <algorithm>
#include <cstdio>

#include "bcc/partition.hpp"
#include "bench_util.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Graph", "#SG", "top #V", "top #E", "V/G.V %", "E/G.E %",
               "2nd #V", "2nd #E", "3rd #V", "3rd #E"});
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();
    const Decomposition dec = decompose(g);

    std::vector<std::pair<EdgeId, std::size_t>> by_arcs;
    for (std::size_t i = 0; i < dec.subgraphs.size(); ++i) {
      by_arcs.emplace_back(dec.subgraphs[i].num_arcs(), i);
    }
    std::sort(by_arcs.rbegin(), by_arcs.rend());

    auto row = table.row().cell(w.id).cell(
        static_cast<std::uint64_t>(dec.subgraphs.size()));
    for (std::size_t rank = 0; rank < 3; ++rank) {
      if (rank >= by_arcs.size()) {
        table.dash().dash();
        if (rank == 0) table.dash().dash();
        continue;
      }
      const Subgraph& sg = dec.subgraphs[by_arcs[rank].second];
      table.cell(static_cast<std::uint64_t>(sg.num_vertices()))
          .cell(static_cast<std::uint64_t>(sg.num_arcs()));
      if (rank == 0) {
        table
            .cell(100.0 * static_cast<double>(sg.num_vertices()) /
                      static_cast<double>(g.num_vertices()),
                  2)
            .cell(100.0 * static_cast<double>(sg.num_arcs()) /
                      static_cast<double>(g.num_arcs()),
                  2);
      }
    }
    (void)row;
  }
  print_table("Table 4: sub-graph decomposition sizes", table);
  return 0;
}
