// Ablation A2: alpha/beta computation strategy. The paper counts reach by
// BFS per articulation point; for undirected graphs the same numbers fall
// out of a block-cut-tree subtree DP in linear total time. Compares both
// on the undirected workloads (and asserts they agree).
#include <cstdio>

#include "bcc/partition.hpp"
#include "bcc/reach.hpp"
#include "bench_util.hpp"
#include "support/error.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Graph", "#Boundary APs", "BFS ms", "TreeDP ms", "Speedup"});
  for (const Workload& w : selected_workloads()) {
    if (w.directed) continue;
    const CsrGraph g = w.build();
    PartitionOptions popts;
    popts.compute_reach = false;
    Decomposition dec = decompose(g, popts);

    std::uint64_t boundary_aps = 0;
    for (const Subgraph& sg : dec.subgraphs) boundary_aps += sg.boundary_aps.size();

    Timer bfs_timer;
    compute_reach_counts(g, dec, ReachMethod::kBfs);
    const double bfs_ms = bfs_timer.millis();
    std::vector<std::vector<std::uint64_t>> bfs_alpha;
    for (const Subgraph& sg : dec.subgraphs) bfs_alpha.push_back(sg.alpha);

    Timer dp_timer;
    compute_reach_counts(g, dec, ReachMethod::kTreeDp);
    const double dp_ms = dp_timer.millis();
    for (std::size_t i = 0; i < dec.subgraphs.size(); ++i) {
      APGRE_REQUIRE(dec.subgraphs[i].alpha == bfs_alpha[i],
                    "tree-DP and BFS alpha disagree on " + w.id);
    }

    table.row()
        .cell(w.id)
        .cell(boundary_aps)
        .cell(bfs_ms, 2)
        .cell(dp_ms, 2)
        .cell(dp_ms > 0.0 ? bfs_ms / dp_ms : 0.0, 1);
    std::fflush(stdout);
  }
  print_table("Ablation A2: alpha/beta by restricted BFS vs block-cut-tree DP",
              table);
  return 0;
}
