// Ablation A4: exact APGRE vs Brandes-Pich source sampling (the paper §5.2
// compares against GPU sampling rates). Reports the sampling time/accuracy
// trade-off: mean relative error on the top-100 vertices and precision of
// the top-10 set, against the exact scores.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "bc/sampling.hpp"
#include "bench_util.hpp"

namespace {

std::set<apgre::Vertex> top_k(const std::vector<double>& scores, std::size_t k) {
  std::vector<apgre::Vertex> order(scores.size());
  for (std::size_t v = 0; v < scores.size(); ++v) order[v] = static_cast<apgre::Vertex>(v);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(),
                    [&](apgre::Vertex a, apgre::Vertex b) { return scores[a] > scores[b]; });
  return {order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k)};
}

}  // namespace

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  const auto workloads = selected_workloads();
  const std::vector<std::size_t> picks{0, 6};  // enron-like, youtube-like

  Table table({"Graph", "Samples", "Time s", "vs exact", "Top-10 precision",
               "Mean rel err (top-100)"});
  for (std::size_t pick : picks) {
    if (pick >= workloads.size()) continue;
    const Workload& w = workloads[pick];
    const CsrGraph g = w.build();

    BcOptions exact_opts;
    exact_opts.algorithm = Algorithm::kApgre;
    const BcResult exact = betweenness(g, exact_opts);
    const auto exact_top10 = top_k(exact.scores, 10);
    const auto exact_top100 =
        top_k(exact.scores, std::min<std::size_t>(100, exact.scores.size()));

    const Vertex n = g.num_vertices();
    for (Vertex samples : {n / 64, n / 16, n / 4, n}) {
      if (samples == 0) continue;
      Timer timer;
      const auto est = sampled_bc(g, samples, 2026);
      const double seconds = timer.seconds();

      const auto est_top10 = top_k(est, 10);
      std::size_t hits = 0;
      for (Vertex v : est_top10) hits += exact_top10.count(v);

      double err_sum = 0.0;
      for (Vertex v : exact_top100) {
        if (exact.scores[v] > 0.0) {
          err_sum += std::fabs(est[v] - exact.scores[v]) / exact.scores[v];
        }
      }
      table.row()
          .cell(w.id)
          .cell(static_cast<std::uint64_t>(samples))
          .cell(seconds, 3)
          .cell(exact.seconds > 0.0 ? seconds / exact.seconds : 0.0, 2)
          .cell(static_cast<double>(hits) / 10.0, 2)
          .cell(err_sum / static_cast<double>(exact_top100.size()), 3);
      std::fflush(stdout);
    }
  }
  print_table("Ablation A4: sampling accuracy/time vs exact APGRE", table);
  return 0;
}
