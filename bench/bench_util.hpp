// Shared helpers for the table/figure benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bc/bc.hpp"
#include "graph/csr.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "workloads.hpp"

namespace apgre::bench {

/// The comparison set of the paper's Tables 2/3 (serial first), derived
/// from the registry's `comparison` capability flag.
inline std::vector<Algorithm> comparison_algorithms() {
  std::vector<Algorithm> set;
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.comparison) set.push_back(info.algorithm);
  }
  return set;
}

/// A single timed run. Returns nullopt when the estimated cost exceeds the
/// budget — rendered as "-" like the paper's missing entries. The estimate
/// is n * arcs scaled by a per-algorithm constant; APGRE_FULL=1 disables
/// skipping.
struct RunOutcome {
  double seconds = 0.0;
  double mteps = 0.0;
  BcResult result;
};

inline bool run_everything() {
  const char* env = std::getenv("APGRE_FULL");
  return env != nullptr && *env == '1';
}

/// Rough per-source-edge throughput assumptions used only to decide
/// whether a run would blow the bench budget (ops/second).
inline double cost_estimate(const CsrGraph& g, Algorithm algorithm) {
  const double base =
      static_cast<double>(g.num_vertices()) * static_cast<double>(g.num_arcs());
  switch (algorithm) {
    case Algorithm::kLockFree: {
      // Pull-based: pays O(levels * remaining vertices) extra; the factor
      // grows with diameter, approximated by sqrt(V) for grids.
      return base * 4.0;
    }
    case Algorithm::kHybrid:
      return base * 1.5;
    case Algorithm::kApgre:
      return base * 0.2;  // decomposition usually removes most of it
    default:
      return base;
  }
}

inline std::optional<RunOutcome> timed_run(const CsrGraph& g, Algorithm algorithm,
                                           double budget_ops = 6e9) {
  if (!run_everything() && cost_estimate(g, algorithm) > budget_ops) {
    return std::nullopt;
  }
  BcOptions opts;
  opts.algorithm = algorithm;
  RunOutcome out;
  out.result = betweenness(g, opts);
  out.seconds = out.result.seconds;
  out.mteps = out.result.mteps;
  return out;
}

/// Print a table with a headline, in both terminal and markdown layout so
/// the output can be pasted into EXPERIMENTS.md.
inline void print_table(const std::string& title, const Table& table) {
  std::printf("\n== %s ==\n%s\n", title.c_str(), table.to_string().c_str());
}

}  // namespace apgre::bench
