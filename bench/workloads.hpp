// The 12 workloads of the paper's Table 1, as deterministic synthetic
// analogues (the SNAP / DIMACS originals are not redistributable offline;
// DESIGN.md §3 documents the substitution). Each analogue matches its
// original's structural class — degree-distribution shape, articulation-
// point density and pendant fraction — which are the properties that drive
// APGRE's redundancy elimination.
//
// Base sizes target a single-core machine (serial Brandes in seconds per
// graph); set APGRE_SCALE=<float> to scale the linear dimension up or down.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace apgre::bench {

struct Workload {
  std::string id;          ///< short analogue id (e.g. "email-enron*")
  std::string paper_name;  ///< the Table-1 graph this stands in for
  std::string klass;       ///< structural class (email/social/web/road/...)
  bool directed;
  std::function<CsrGraph()> build;
};

/// All 12 analogues, in the paper's Table-1 order.
std::vector<Workload> all_workloads(double scale);

/// Scale factor from the APGRE_SCALE environment variable (default 1.0).
double env_scale();

/// Optional comma-separated workload-id filter from APGRE_WORKLOADS
/// (substring match); empty means "all".
std::vector<Workload> selected_workloads();

/// The dblp analogue used by the scaling figure (paper Figure 9).
Workload dblp_workload(double scale);

/// Maximally skewed decomposition (not part of Table 1): one dominant
/// biconnected core plus thousands of tiny satellite blocks, chains and
/// pendants. A flat parallel loop over sub-graphs serializes on the core;
/// this is the work-stealing scheduler's stress / regression workload
/// (tools/bench_regress includes it by default).
Workload skewed_workload(double scale);

}  // namespace apgre::bench
