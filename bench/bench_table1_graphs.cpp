// Paper Table 1: the evaluation graphs. Prints the analogue inventory with
// the structural properties that matter to APGRE (articulation points and
// pendants) next to the paper's original graph names.
#include <cstdio>

#include "bcc/articulation.hpp"
#include "bench_util.hpp"
#include "graph/degree.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Analogue", "Paper graph", "Class", "#Vertices", "#Arcs",
               "Directed", "#APs", "Pendant %"});
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();
    const DegreeStats stats = degree_stats(g);
    Vertex aps = 0;
    for (bool flag : articulation_points(g)) aps += flag ? 1 : 0;
    table.row()
        .cell(w.id)
        .cell(w.paper_name)
        .cell(w.klass)
        .cell(static_cast<std::uint64_t>(g.num_vertices()))
        .cell(static_cast<std::uint64_t>(g.num_arcs()))
        .cell(w.directed ? "Y" : "N")
        .cell(static_cast<std::uint64_t>(aps))
        .cell(100.0 * static_cast<double>(stats.pendant_count) /
                  static_cast<double>(g.num_vertices()),
              1);
  }
  print_table("Table 1: real-world graph analogues used for evaluation", table);
  std::printf("(set APGRE_SCALE to resize, APGRE_WORKLOADS to filter)\n");
  return 0;
}
