// Paper Figure 10: APGRE's parallel scaling up to 32 threads (the paper's
// four-socket 8-core machine). Same single-core caveat as Figure 9; the
// thread ladder exercises both parallel levels (sub-graph coarse + in-sub-
// graph fine) and verifies the implementation stays correct and stable
// when heavily oversubscribed.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  const auto workloads = selected_workloads();
  // Two contrasting analogues: community-structured dblp and a web crawl.
  const std::vector<std::size_t> picks{5, 9};

  std::vector<std::string> header{"Graph"};
  const std::vector<int> thread_counts{1, 2, 4, 8, 16, 32};
  for (int t : thread_counts) header.push_back(std::to_string(t) + "t");
  Table table(header);

  for (std::size_t pick : picks) {
    if (pick >= workloads.size()) continue;
    const Workload& w = workloads[pick];
    const CsrGraph g = w.build();
    table.row().cell(w.id);
    double one_thread = 0.0;
    for (int threads : thread_counts) {
      BcOptions opts;
      opts.algorithm = Algorithm::kApgre;
      opts.threads = threads;
      const BcResult r = betweenness(g, opts);
      if (threads == 1) one_thread = r.seconds;
      table.cell(one_thread > 0.0 ? one_thread / r.seconds : 0.0, 2);
      std::fflush(stdout);
    }
  }
  print_table("Figure 10: APGRE self-relative speedup vs thread budget", table);
  std::printf("(single-core container: expect ~1.0 across the ladder; on the"
              " paper's 32-core machine the top sub-graph's fine-grained level"
              " parallelism carries the scaling)\n");
  return 0;
}
