// Paper Figure 9: parallel scaling of every algorithm on the dblp analogue
// as the thread budget grows (1..12 in the paper, on a 6-core SMT system).
// NOTE: in this container the hardware exposes a single core, so curves
// are expected to be flat-to-declining (oversubscription); EXPERIMENTS.md
// records this substitution. The binary still demonstrates the mechanism
// and is meaningful on real multicore hardware.
#include <cstdio>

#include "bench_util.hpp"
#include "support/parallel.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  const Workload w = dblp_workload(env_scale());
  const CsrGraph g = w.build();
  std::printf("Workload %s: %u vertices, %llu arcs\n", w.id.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_arcs()));

  const std::vector<int> thread_counts{1, 2, 4, 8, 12};
  std::vector<std::string> header{"Algorithm"};
  for (int t : thread_counts) header.push_back(std::to_string(t) + "t");
  Table table(header);

  // Serial reference for the speedup rows.
  const auto serial = timed_run(g, Algorithm::kBrandesSerial);
  const double serial_seconds = serial ? serial->seconds : 0.0;
  std::printf("serial Brandes: %.3f s\n", serial_seconds);

  for (Algorithm a : comparison_algorithms()) {
    if (a == Algorithm::kBrandesSerial) continue;
    table.row().cell(algorithm_name(a));
    for (int threads : thread_counts) {
      BcOptions opts;
      opts.algorithm = a;
      opts.threads = threads;
      if (!run_everything() && cost_estimate(g, a) > 6e9) {
        table.dash();
        continue;
      }
      const BcResult r = betweenness(g, opts);
      table.cell(serial_seconds > 0.0 ? serial_seconds / r.seconds : 0.0, 2);
      std::fflush(stdout);
    }
  }
  print_table("Figure 9: speedup over serial vs thread budget (dblp analogue)",
              table);
  std::printf("(single-core container: oversubscribed threads cannot speed up;"
              " shape check applies to the 1t column)\n");
  return 0;
}
