// Paper Table 3: traversal rate in MTEPS (TEPS_BC = n * m / t, millions).
// The paper's headline: APGRE reaches 45 ~ 2400 MTEPS where the baselines
// sit at 8 ~ 400.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  const auto algorithms = comparison_algorithms();
  std::vector<std::string> header{"Graph"};
  for (Algorithm a : algorithms) header.push_back(algorithm_name(a));
  Table table(header);

  double apgre_min = 0.0;
  double apgre_max = 0.0;
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();
    table.row().cell(w.id);
    for (Algorithm a : algorithms) {
      const auto outcome = timed_run(g, a);
      if (!outcome) {
        table.dash();
        continue;
      }
      table.cell(outcome->mteps, 2);
      if (a == Algorithm::kApgre) {
        if (apgre_min == 0.0 || outcome->mteps < apgre_min) apgre_min = outcome->mteps;
        if (outcome->mteps > apgre_max) apgre_max = outcome->mteps;
      }
    }
    std::fflush(stdout);
  }

  print_table("Table 3: search rate (MTEPS)", table);
  std::printf("APGRE MTEPS range: %.1f ~ %.1f (paper: 45 ~ 2400 on 12 threads)\n",
              apgre_min, apgre_max);
  return 0;
}
