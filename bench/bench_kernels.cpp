// google-benchmark micro-benchmarks for the building-block kernels:
// biconnected decomposition, partitioning, alpha/beta counting and the
// per-source Brandes iteration. Useful for regression-tracking the
// substrate independent of end-to-end BC runs.
#include <benchmark/benchmark.h>

#include "bc/brandes.hpp"
#include "bcc/articulation.hpp"
#include "bcc/bicomp.hpp"
#include "bcc/partition.hpp"
#include "bcc/reach.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace {

using namespace apgre;

CsrGraph social_graph(std::int64_t n) {
  return attach_pendants(barabasi_albert(static_cast<Vertex>(n), 4, 31),
                         static_cast<Vertex>(n / 2), 32);
}

void BM_ArticulationPoints(benchmark::State& state) {
  const CsrGraph g = social_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(articulation_points(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_ArticulationPoints)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_BiconnectedComponents(benchmark::State& state) {
  const CsrGraph g = social_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(biconnected_components(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_BiconnectedComponents)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_Decompose(benchmark::State& state) {
  const CsrGraph g = social_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose(g));
  }
}
BENCHMARK(BM_Decompose)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_ReachBfs(benchmark::State& state) {
  const CsrGraph g = social_graph(state.range(0));
  PartitionOptions opts;
  opts.compute_reach = false;
  Decomposition dec = decompose(g, opts);
  for (auto _ : state) {
    compute_reach_counts(g, dec, ReachMethod::kBfs);
  }
}
BENCHMARK(BM_ReachBfs)->Arg(1 << 10)->Arg(1 << 12);

void BM_ReachTreeDp(benchmark::State& state) {
  const CsrGraph g = social_graph(state.range(0));
  PartitionOptions opts;
  opts.compute_reach = false;
  Decomposition dec = decompose(g, opts);
  for (auto _ : state) {
    compute_reach_counts(g, dec, ReachMethod::kTreeDp);
  }
}
BENCHMARK(BM_ReachTreeDp)->Arg(1 << 10)->Arg(1 << 12);

void BM_BrandesSingleSource(benchmark::State& state) {
  const CsrGraph g = social_graph(state.range(0));
  Vertex s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(brandes_bc_from_sources(g, {s}, 1.0));
    s = (s + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_BrandesSingleSource)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
