// Ablation A5: the weighted extension. The articulation-point
// decomposition is weight-agnostic, so APGRE's redundancy elimination
// carries over to Dijkstra-based BC unchanged — this bench measures the
// speedup of weighted APGRE over weighted Brandes on the (undirected)
// workload analogues with random integer travel-time weights.
#include <cstdio>

#include "bc/weighted.hpp"
#include "bench_util.hpp"
#include "graph/weighted.hpp"
#include "support/timer.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Graph", "Brandes-W s", "APGRE-W s", "Speedup", "Partial %",
               "Total %"});
  for (const Workload& w : selected_workloads()) {
    if (w.directed) continue;  // weighted sweep sticks to symmetric inputs
    const CsrGraph shape = w.build();
    const WeightedCsrGraph g = with_random_weights(shape, 1, 9, 2026);

    Timer brandes_timer;
    const auto exact = weighted_brandes_bc(g);
    const double brandes_s = brandes_timer.seconds();

    Timer apgre_timer;
    ApgreStats stats;
    const auto fast = weighted_apgre_bc(g, {}, &stats);
    const double apgre_s = apgre_timer.seconds();
    (void)exact;
    (void)fast;

    table.row()
        .cell(w.id)
        .cell(brandes_s, 3)
        .cell(apgre_s, 3)
        .cell(apgre_s > 0.0 ? brandes_s / apgre_s : 0.0, 2)
        .cell(100.0 * stats.partial_redundancy, 1)
        .cell(100.0 * stats.total_redundancy, 1);
    std::fflush(stdout);
  }
  print_table("Ablation A5: weighted (Dijkstra) APGRE vs weighted Brandes", table);
  return 0;
}
