// Paper Figure 2 (and §2.2): real-world graphs carry many articulation
// points and many single-edge ("pendant") vertices — the structural source
// of APGRE's redundancy. Prints the AP/pendant census per workload and a
// degree histogram for the Human-Disease-Network-style exemplar.
#include <cstdio>

#include "bcc/articulation.hpp"
#include "bench_util.hpp"
#include "graph/degree.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  Table table({"Graph", "#V", "#APs", "AP %", "#Pendants", "Pendant %",
               "Max degree", "Mean degree"});
  for (const Workload& w : selected_workloads()) {
    const CsrGraph g = w.build();
    const DegreeStats stats = degree_stats(g);
    Vertex aps = 0;
    for (bool flag : articulation_points(g)) aps += flag ? 1 : 0;
    const auto n = static_cast<double>(g.num_vertices());
    table.row()
        .cell(w.id)
        .cell(static_cast<std::uint64_t>(g.num_vertices()))
        .cell(static_cast<std::uint64_t>(aps))
        .cell(100.0 * aps / n, 1)
        .cell(static_cast<std::uint64_t>(stats.pendant_count))
        .cell(100.0 * stats.pendant_count / n, 1)
        .cell(static_cast<std::uint64_t>(stats.max_out_degree))
        .cell(stats.out_degree.mean(), 2);
  }
  print_table("Figure 2: articulation points and pendants in real-world graphs",
              table);

  // Degree histogram of the email analogue (power-law shape check).
  const Workload enron = selected_workloads().front();
  const DegreeStats stats = degree_stats(enron.build());
  std::printf("Degree histogram (%s), log2 buckets:\n%s\n", enron.id.c_str(),
              stats.out_degree_histogram.to_string().c_str());
  return 0;
}
