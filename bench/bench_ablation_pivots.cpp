// Ablation A8: approximation quality across the estimator family of §6 —
// Brandes-Pich pivots (uniform / degree-proportional / max-min) and
// Geisberger linear scaling — measured as top-10 precision and Spearman-
// style rank agreement of the top-100 against the exact scores.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bc/approx.hpp"
#include "bc/brandes.hpp"
#include "bench_util.hpp"

namespace {

using namespace apgre;

std::vector<Vertex> ranking(const std::vector<double>& scores, std::size_t k) {
  std::vector<Vertex> order(scores.size());
  for (Vertex v = 0; v < scores.size(); ++v) order[v] = static_cast<Vertex>(v);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(),
                    [&](Vertex a, Vertex b) { return scores[a] > scores[b]; });
  order.resize(k);
  return order;
}

double top_overlap(const std::vector<Vertex>& a, const std::vector<Vertex>& b) {
  const std::set<Vertex> sb(b.begin(), b.end());
  std::size_t hits = 0;
  for (Vertex v : a) hits += sb.count(v);
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

}  // namespace

int main() {
  using namespace apgre::bench;

  const auto workloads = selected_workloads();
  const std::vector<std::size_t> picks{0, 6};

  Table table({"Graph", "Estimator", "Pivots", "Top-10 prec", "Top-100 overlap"});
  for (std::size_t pick : picks) {
    if (pick >= workloads.size()) continue;
    const Workload& w = workloads[pick];
    const CsrGraph g = w.build();
    const auto exact = brandes_bc(g);
    const auto exact10 = ranking(exact, 10);
    const auto exact100 = ranking(exact, 100);
    const Vertex k = g.num_vertices() / 16;

    struct Row {
      const char* name;
      std::vector<double> scores;
    };
    std::vector<Row> rows;
    rows.push_back({"uniform", estimate_bc(g, select_pivots(g, k, PivotStrategy::kUniform, 7))});
    rows.push_back({"degree", estimate_bc(g, select_pivots(g, k, PivotStrategy::kDegreeProportional, 7))});
    rows.push_back({"maxmin", estimate_bc(g, select_pivots(g, k, PivotStrategy::kMaxMin, 7))});
    rows.push_back({"linear-scaled",
                    estimate_bc_linear_scaled(
                        g, select_pivots(g, k, PivotStrategy::kUniform, 7))});

    for (const Row& row : rows) {
      table.row()
          .cell(w.id)
          .cell(row.name)
          .cell(static_cast<std::uint64_t>(k))
          .cell(top_overlap(ranking(row.scores, 10), exact10), 2)
          .cell(top_overlap(ranking(row.scores, 100), exact100), 2);
      std::fflush(stdout);
    }
  }
  print_table("Ablation A8: approximation estimator ranking quality", table);
  return 0;
}
