// Ablation A6: vertex-ordering / graph re-layout (Cong & Makarychev,
// IPDPS 2011, paper §6). BC kernels are memory-bound; BFS/DFS relabelling
// clusters each vertex's neighbourhood, random order destroys locality.
// Measures serial Brandes and APGRE under each layout.
#include <cstdio>

#include "bc/apgre.hpp"
#include "bc/brandes.hpp"
#include "bench_util.hpp"
#include "graph/ordering.hpp"

int main() {
  using namespace apgre;
  using namespace apgre::bench;

  const auto workloads = selected_workloads();
  const std::vector<std::size_t> picks{0, 6};  // enron-like, youtube-like

  struct Named {
    const char* name;
    VertexOrder order;
  };
  const Named orders[] = {{"natural", VertexOrder::kNatural},
                          {"degree", VertexOrder::kDegreeDescending},
                          {"bfs", VertexOrder::kBfs},
                          {"dfs", VertexOrder::kDfs},
                          {"random", VertexOrder::kRandom}};

  Table table({"Graph", "Order", "Serial s", "APGRE s"});
  for (std::size_t pick : picks) {
    if (pick >= workloads.size()) continue;
    const Workload& w = workloads[pick];
    const CsrGraph base = w.build();
    for (const Named& o : orders) {
      const OrderedGraph ordered = apply_order(base, o.order, 7);
      Timer serial_timer;
      const auto serial = brandes_bc(ordered.graph);
      const double serial_s = serial_timer.seconds();
      Timer apgre_timer;
      const auto fast = apgre_bc(ordered.graph);
      const double apgre_s = apgre_timer.seconds();
      (void)serial;
      (void)fast;
      table.row().cell(w.id).cell(o.name).cell(serial_s, 3).cell(apgre_s, 3);
      std::fflush(stdout);
    }
  }
  print_table("Ablation A6: vertex-ordering effect on BC kernels", table);
  return 0;
}
