#include "workloads.hpp"

#include <cstdlib>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace apgre::bench {

namespace {

Vertex scaled(double scale, Vertex base) {
  return std::max<Vertex>(8, static_cast<Vertex>(static_cast<double>(base) * scale));
}

int scaled_pow2(double scale, int base_scale) {
  // R-MAT sizes move in powers of two; shift by log2(scale) rounded.
  int shift = 0;
  while (scale >= 2.0) {
    scale /= 2.0;
    ++shift;
  }
  while (scale > 0.0 && scale <= 0.5) {
    scale *= 2.0;
    --shift;
  }
  return std::max(4, base_scale + shift);
}

}  // namespace

double env_scale() {
  const char* env = std::getenv("APGRE_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

// Each analogue layers three structural ingredients the paper's originals
// exhibit (§2.2, Figure 7, Table 4):
//   * a biconnected core (BA / R-MAT / caveman / grid),
//   * satellite communities bridged through articulation points
//     -> partial redundancy (common sub-DAGs),
//   * pendant / chain fringes -> total redundancy (derived DAGs).
std::vector<Workload> all_workloads(double s) {
  std::vector<Workload> w;

  // W1 Email-Enron: undirected, power-law, ~1/3 pendants, modest satellite
  // structure (paper: 31% total + 20%-ish partial redundancy).
  w.push_back({"email-enron*", "Email-Enron", "email", false, [s] {
                 CsrGraph g = barabasi_albert(scaled(s, 2200), 5, 101);
                 g = attach_communities(g, scaled(s, 30), 20, 102);
                 return attach_pendants(g, scaled(s, 1100), 103);
               }});
  // W2 Email-EuAll: directed, extremely sparse, 71% total redundancy —
  // a small core drowned in in-degree-0 pendants.
  w.push_back({"email-euall*", "Email-EuAll", "email", true, [s] {
                 CsrGraph g = rmat(scaled_pow2(s, 9), 3, 0.5, 0.2, 0.2, false, 104);
                 g = attach_communities(g, scaled(s, 40), 12, 105);
                 return attach_pendants(g, scaled(s, 3200), 106);
               }});
  // W3 Slashdot0811: directed social graph dominated by one dense
  // biconnected core, few pendants (paper: 35% partial, ~0% total).
  w.push_back({"slashdot*", "Slashdot0811", "social", true, [s] {
                 CsrGraph g = rmat(scaled_pow2(s, 11), 10, 0.45, 0.22, 0.22, false, 107);
                 return attach_communities(g, scaled(s, 8), 30, 108);
               }});
  // W4 soc-DouBan: directed social network, 2/3 pendant fraction.
  w.push_back({"douban*", "soc-DouBan", "social", true, [s] {
                 CsrGraph g = rmat(scaled_pow2(s, 9), 4, 0.45, 0.22, 0.22, false, 109);
                 g = attach_communities(g, scaled(s, 50), 10, 110);
                 return attach_pendants(g, scaled(s, 2400), 111);
               }});
  // W5 WikiTalk: directed communication graph; the paper's best case
  // (80% partial redundancy) — a modest core with a huge articulation
  // fringe of satellite communities plus pendants.
  w.push_back({"wikitalk*", "WikiTalk", "comm", true, [s] {
                 CsrGraph g = rmat(scaled_pow2(s, 9), 6, 0.5, 0.2, 0.2, false, 112);
                 g = attach_communities(g, scaled(s, 60), 24, 113);
                 return attach_pendants(g, scaled(s, 2600), 114);
               }});
  // W6 dblp-2010: a dominant well-connected core community (the paper's
  // top sub-graph holds 45% of the vertices) with many small co-author
  // cliques bridged through articulation points, moderate pendants.
  w.push_back({"dblp*", "dblp-2010", "collab", false, [s] {
                 CsrGraph g = barabasi_albert(scaled(s, 1200), 3, 115);
                 g = attach_communities(g, scaled(s, 150), 8, 116);
                 return attach_pendants(g, scaled(s, 700), 117);
               }});
  // W7 com-youtube: large undirected social graph, ~53% total redundancy.
  w.push_back({"youtube*", "com-youtube", "social", false, [s] {
                 CsrGraph g = barabasi_albert(scaled(s, 2400), 4, 117);
                 g = attach_communities(g, scaled(s, 40), 16, 118);
                 return attach_pendants(g, scaled(s, 2300), 119);
               }});
  // W8 NotreDame: web graph with long tree tendrils around a skewed core
  // (paper: 64% partial redundancy).
  w.push_back({"notredame*", "NotreDame", "web", true, [s] {
                 CsrGraph g = rmat(scaled_pow2(s, 9), 4, 0.52, 0.19, 0.19, false, 120);
                 g = attach_chains(g, scaled(s, 320), 4, 121);
                 g = attach_communities(g, scaled(s, 25), 18, 122);
                 return attach_pendants(g, scaled(s, 800), 123);
               }});
  // W9 web-BerkStan: dense directed web crawl, big biconnected core.
  w.push_back({"berkstan*", "web-BerkStan", "web", true, [s] {
                 CsrGraph g = rmat(scaled_pow2(s, 11), 11, 0.5, 0.2, 0.2, false, 124);
                 g = attach_communities(g, scaled(s, 12), 40, 125);
                 return attach_pendants(g, scaled(s, 650), 126);
               }});
  // W10 web-Google: directed web graph, mixed communities and tendrils.
  w.push_back({"google*", "web-Google", "web", true, [s] {
                 CsrGraph g = rmat(scaled_pow2(s, 10), 6, 0.48, 0.21, 0.21, false, 127);
                 g = attach_communities(g, scaled(s, 35), 20, 128);
                 return attach_pendants(g, scaled(s, 1500), 129);
               }});
  // W11 USA-roadNY: planar-ish grid with dead-end streets (degree-1
  // junctions) and short cul-de-sac chains (paper: 5% partial + 16% total).
  w.push_back({"road-ny*", "USA-roadNY", "road", false, [s] {
                 CsrGraph g = road_grid(scaled(s, 54), scaled(s, 54), 0.30, 0.06, 130);
                 g = attach_chains(g, scaled(s, 140), 2, 131);
                 return attach_pendants(g, scaled(s, 420), 132);
               }});
  // W12 USA-roadBAY: sparser grid, more pruning and more dangles
  // (paper: 13% partial + 23% total).
  w.push_back({"road-bay*", "USA-roadBAY", "road", false, [s] {
                 CsrGraph g = road_grid(scaled(s, 58), scaled(s, 52), 0.18, 0.10, 133);
                 g = attach_chains(g, scaled(s, 260), 2, 134);
                 return attach_pendants(g, scaled(s, 560), 135);
               }});
  return w;
}

std::vector<Workload> selected_workloads() {
  auto all = all_workloads(env_scale());
  const char* env = std::getenv("APGRE_WORKLOADS");
  if (env == nullptr || *env == '\0') return all;

  std::vector<std::string> wanted;
  std::stringstream ss(env);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) wanted.push_back(token);
  }
  std::vector<Workload> filtered;
  for (auto& w : all) {
    for (const auto& pattern : wanted) {
      if (w.id.find(pattern) != std::string::npos) {
        filtered.push_back(w);
        break;
      }
    }
  }
  return filtered.empty() ? all : filtered;
}

Workload dblp_workload(double scale) { return all_workloads(scale)[5]; }

Workload skewed_workload(double s) {
  // One dense biconnected core holding most of the arcs, plus a long tail
  // of 6-vertex communities, short chains and pendants, all bridged
  // through articulation points: the sub-graph size distribution APGRE's
  // Figure 2 shows for real graphs, pushed to the extreme where a flat
  // loop over sub-graphs load-imbalances worst.
  return {"skewed*", "(scheduler stress)", "synthetic", false, [s] {
            CsrGraph g = barabasi_albert(scaled(s, 1400), 8, 200);
            g = attach_communities(g, scaled(s, 260), 6, 201);
            g = attach_chains(g, scaled(s, 160), 3, 202);
            return attach_pendants(g, scaled(s, 1400), 203);
          }};
}

}  // namespace apgre::bench
