// Quickstart: build a graph, compute betweenness centrality with APGRE,
// inspect the redundancy the decomposition removed, and cross-check the
// scores against the serial Brandes baseline.
//
//   ./quickstart [path/to/edge_list.txt]
//
// With a file argument the graph is parsed as a SNAP edge list (undirected)
// instead of the built-in demo graph.
#include <algorithm>
#include <cstdio>

#include "bc/bc.hpp"
#include "graph/generators.hpp"
#include "graph/io_snap.hpp"
#include "graph/transform.hpp"

int main(int argc, char** argv) {
  using namespace apgre;

  // 1. Get a graph: a social-network-like demo unless a file is given.
  CsrGraph graph;
  if (argc > 1) {
    graph = read_snap_file(argv[1], /*directed=*/false).graph;
    std::printf("loaded %s: %u vertices, %llu arcs\n", argv[1],
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_arcs()));
  } else {
    // Power-law core + pendant fringe: the structure APGRE exploits.
    graph = attach_pendants(barabasi_albert(2000, 3, /*seed=*/7), 800, 8);
    std::printf("demo graph: %u vertices, %llu arcs\n", graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_arcs()));
  }

  // 2. Betweenness with the default algorithm (APGRE).
  const BcResult apgre = betweenness(graph);
  std::printf("\nAPGRE: %.3f s (%.1f MTEPS)\n", apgre.seconds, apgre.mteps);
  std::printf("  decomposition: %zu sub-graphs, %u articulation points, "
              "%u pendants derived\n",
              apgre.apgre_stats.num_subgraphs,
              apgre.apgre_stats.num_articulation_points,
              apgre.apgre_stats.num_pendants_removed);
  std::printf("  redundancy removed: %.1f%% partial + %.1f%% total\n",
              100.0 * apgre.apgre_stats.partial_redundancy,
              100.0 * apgre.apgre_stats.total_redundancy);

  // 3. Cross-check against serial Brandes (the O(VE) baseline).
  BcOptions serial_opts;
  serial_opts.algorithm = Algorithm::kBrandesSerial;
  const BcResult serial = betweenness(graph, serial_opts);
  double max_diff = 0.0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    max_diff = std::max(max_diff,
                        std::abs(apgre.scores[v] - serial.scores[v]) /
                            std::max(1.0, serial.scores[v]));
  }
  std::printf("\nserial Brandes: %.3f s  ->  APGRE speedup %.2fx, max relative "
              "score deviation %.2e\n",
              serial.seconds, serial.seconds / apgre.seconds, max_diff);

  // 4. Top-5 vertices by centrality.
  std::vector<Vertex> order(graph.num_vertices());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](Vertex a, Vertex b) {
                      return apgre.scores[a] > apgre.scores[b];
                    });
  std::printf("\ntop-5 central vertices:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%d vertex %u  BC = %.1f\n", i + 1, order[i],
                apgre.scores[order[i]]);
  }

  // 5. Solving the same graph repeatedly? Use the session API: a Solver
  // caches the decomposition, so only the scoring phase repeats.
  Solver solver(graph);
  solver.solve();  // decomposes once
  BcOptions tuned;
  tuned.scheduler.grain = 8;  // work-stealing scheduler knob sweep
  const BcResult resolved = solver.solve(tuned);
  std::printf("\nre-solve via Solver: %.3f s scoring "
              "(decomposition cached: %.3f s partitioning)\n",
              resolved.seconds, resolved.apgre_stats.partition_seconds);
  return 0;
}
