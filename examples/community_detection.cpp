// Girvan-Newman community detection — the paper's opening motivation for
// BC (§1 cites Girvan & Newman 2002). Repeatedly removes the edge with the
// highest edge-betweenness until the network splits into the requested
// number of communities, then reports how cleanly the planted caveman
// communities were recovered.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bc/edge_bc.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace apgre;

  constexpr Vertex kCliques = 8;
  constexpr Vertex kSize = 9;
  CsrGraph g = caveman(kCliques, kSize, /*seed=*/4242);
  std::printf("network: %u members, %llu ties, %u planted communities\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              kCliques);

  // Girvan-Newman: cut the highest-EBC edge until kCliques components.
  int cuts = 0;
  while (true) {
    const ComponentLabels labels = connected_components(g);
    if (labels.num_components >= kCliques) break;

    const auto scores = edge_betweenness_bc(g);
    const auto top = top_edges(g, scores, 1);
    const Edge cut = top.front().first;
    std::printf("  cut #%d: tie %u-%u (edge betweenness %.0f)\n", ++cuts,
                cut.src, cut.dst, top.front().second);

    EdgeList arcs = g.arcs();
    std::erase_if(arcs, [&](const Edge& e) {
      return (e.src == cut.src && e.dst == cut.dst) ||
             (e.src == cut.dst && e.dst == cut.src);
    });
    g = CsrGraph::from_edges(g.num_vertices(), std::move(arcs), false);
  }

  // Evaluate recovery: each component should be one planted clique.
  const ComponentLabels labels = connected_components(g);
  std::printf("\nsplit into %u communities after %d cuts\n",
              labels.num_components, cuts);
  std::map<Vertex, std::map<Vertex, Vertex>> confusion;  // component -> clique -> count
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ++confusion[labels.component[v]][v / kSize];
  }
  Vertex pure = 0;
  for (const auto& [component, cliques] : confusion) {
    if (cliques.size() == 1 && cliques.begin()->second == kSize) ++pure;
  }
  std::printf("%u of %u planted communities recovered exactly\n", pure, kCliques);
  return pure == kCliques ? 0 : 1;
}
