// Live centrality monitoring on an evolving network — the dynamic-graph
// setting the paper leaves open. A social network receives a stream of tie
// creations/removals; DynamicBc keeps the exact broker ranking current by
// recomputing only the affected sources, and this example reports how much
// of the full O(|V||E|) recomputation each event actually needed.
#include <algorithm>
#include <cstdio>

#include "bc/dynamic.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"

int main() {
  using namespace apgre;

  const CsrGraph start = attach_pendants(caveman(12, 9, /*seed=*/31), 80, 32);
  std::printf("monitoring a network of %u members, %llu ties\n",
              start.num_vertices(),
              static_cast<unsigned long long>(start.num_edges()));

  Timer init_timer;
  DynamicBc tracker(start);
  std::printf("initial exact ranking computed in %.3f s\n\n", init_timer.seconds());

  auto top_broker = [&]() {
    const auto& scores = tracker.scores();
    return static_cast<Vertex>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
  };

  Xoshiro256 rng(33);
  const Vertex n = start.num_vertices();
  Vertex total_affected = 0;
  int events = 0;
  std::printf("%-8s %-12s %-10s %-14s %s\n", "event", "tie", "affected",
              "update ms", "top broker");
  while (events < 12) {
    // Triadic closure churn: ties appear/vanish between a member and a
    // friend-of-a-friend — the realistic (and local) social edit.
    const auto u = static_cast<Vertex>(rng.bounded(n));
    const auto friends = tracker.graph().out_neighbors(u);
    if (friends.empty()) continue;
    const Vertex mid = friends[rng.bounded(friends.size())];
    const auto second = tracker.graph().out_neighbors(mid);
    if (second.empty()) continue;
    const Vertex v = second[rng.bounded(second.size())];
    if (u == v) continue;
    const auto outs = tracker.graph().out_neighbors(u);
    const bool present = std::binary_search(outs.begin(), outs.end(), v);
    Timer timer;
    Vertex affected = 0;
    try {
      affected = present ? tracker.remove_edge(u, v) : tracker.insert_edge(u, v);
    } catch (const Error&) {
      continue;
    }
    ++events;
    total_affected += affected;
    std::printf("%-8s %3u-%-7u %4u/%-5u %8.2f       %u\n",
                present ? "cut" : "new", u, v, affected, n, timer.millis(),
                top_broker());
  }

  std::printf("\naverage affected sources per event: %.1f of %u (%.1f%% of a "
              "full recompute)\n",
              static_cast<double>(total_affected) / events, n,
              100.0 * total_affected / (static_cast<double>(events) * n));
  return 0;
}
