// Contingency screening for power-grid component failures (paper §1 cites
// Jin et al., IPDPS 2010: parallel BC for power-grid contingency analysis).
// Ranks buses by betweenness to produce the N-1 screening list, then
// verifies the ranking's meaning: disconnecting a top-BC articulation bus
// splits the grid, stranding load.
#include <algorithm>
#include <cstdio>

#include "bc/bc.hpp"
#include "bcc/articulation.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"

namespace {

using namespace apgre;

/// Size of the largest fragment after removing bus `v` (brute-force N-1
/// contingency for one component).
Vertex largest_fragment_without(const CsrGraph& g, Vertex v) {
  std::vector<Vertex> keep;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (u != v) keep.push_back(u);
  }
  const InducedSubgraph rest = induced_subgraph(g, keep);
  const ComponentLabels labels = connected_components(rest.graph);
  std::vector<Vertex> sizes(labels.num_components, 0);
  for (Vertex u = 0; u < rest.graph.num_vertices(); ++u) ++sizes[labels.component[u]];
  return *std::max_element(sizes.begin(), sizes.end());
}

}  // namespace

int main() {
  using namespace apgre;

  // Grid analogue: a meshed transmission backbone (small-world ring) with
  // radial distribution feeders (trees/pendants) hanging off it.
  CsrGraph grid = watts_strogatz(600, 3, 0.1, /*seed=*/77);
  grid = attach_pendants(grid, 500, 78);   // radial feeders
  grid = attach_pendants(grid, 400, 79);   // second-level taps
  const InducedSubgraph lc = largest_component(grid);
  std::printf("power grid: %u buses, %llu branches\n", lc.graph.num_vertices(),
              static_cast<unsigned long long>(lc.graph.num_edges()));

  BcOptions opts;
  opts.undirected_halving = true;
  const BcResult result = betweenness(lc.graph, opts);
  std::printf("screening metric computed in %.3f s (APGRE, %.0f%% of Brandes "
              "work eliminated)\n\n",
              result.seconds,
              100.0 * (result.apgre_stats.partial_redundancy +
                       result.apgre_stats.total_redundancy));

  const auto is_ap = articulation_points(lc.graph);
  std::vector<Vertex> ranking(lc.graph.num_vertices());
  for (Vertex v = 0; v < lc.graph.num_vertices(); ++v) ranking[v] = v;
  std::sort(ranking.begin(), ranking.end(), [&](Vertex a, Vertex b) {
    return result.scores[a] > result.scores[b];
  });

  std::printf("N-1 contingency screening list (top 8 buses by BC):\n");
  const auto total = lc.graph.num_vertices();
  for (int i = 0; i < 8; ++i) {
    const Vertex bus = ranking[static_cast<std::size_t>(i)];
    const Vertex remaining = largest_fragment_without(lc.graph, bus);
    const Vertex stranded = total - 1 - remaining;
    std::printf("  bus %4u  BC %9.0f  %s — outage strands %u buses\n", bus,
                result.scores[bus],
                is_ap[bus] ? "cut bus " : "meshed  ", stranded);
  }

  std::printf("\nhigh-BC cut buses are the critical contingencies: their "
              "outage islands part of the grid.\n");
  return 0;
}
