// Transportation-network analysis (paper §1: "analysis of transportation
// networks"). Loads a DIMACS .gr road graph if given, otherwise generates
// a road-grid analogue; finds the most loaded junctions (highest BC) and
// compares the exact APGRE run against source sampling, the standard
// approach for huge road networks.
//
//   ./road_network [path/to/road.gr]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bc/bc.hpp"
#include "bc/sampling.hpp"
#include "graph/generators.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/transform.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace apgre;

  CsrGraph graph;
  if (argc > 1) {
    graph = read_dimacs_file(argv[1], /*directed=*/false);
    std::printf("loaded %s\n", argv[1]);
  } else {
    graph = road_grid(70, 70, /*diagonal_p=*/0.25, /*prune_p=*/0.08, 11);
  }
  const InducedSubgraph lc = largest_component(graph);
  std::printf("road network: %u junctions, %llu road segments "
              "(largest component)\n",
              lc.graph.num_vertices(),
              static_cast<unsigned long long>(lc.graph.num_edges()));

  // Exact BC. Road graphs are the paper's hardest case for APGRE (few
  // articulation points, 5-13%% partial redundancy) — still a win.
  const BcResult exact = betweenness(lc.graph);
  std::printf("exact APGRE: %.3f s, redundancy removed %.1f%% partial + "
              "%.1f%% total\n",
              exact.seconds, 100.0 * exact.apgre_stats.partial_redundancy,
              100.0 * exact.apgre_stats.total_redundancy);

  std::vector<Vertex> order(lc.graph.num_vertices());
  for (Vertex v = 0; v < lc.graph.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](Vertex a, Vertex b) {
                      return exact.scores[a] > exact.scores[b];
                    });
  std::printf("\nmost loaded junctions (shortest-path through-traffic):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  junction %5u  load %.0f\n", lc.to_global[order[i]],
                exact.scores[order[i]]);
  }

  // Sampled estimate: the classic time/accuracy trade for planet-scale maps.
  const auto k = static_cast<Vertex>(
      std::ceil(std::sqrt(static_cast<double>(lc.graph.num_vertices()))));
  Timer timer;
  const auto estimate = sampled_bc(lc.graph, k, 5);
  std::printf("\nsampled estimate with k=%u sources: %.3f s (%.1fx faster)\n", k,
              timer.seconds(), exact.seconds / timer.seconds());
  const Vertex exact_top = order[0];
  const auto est_top = static_cast<Vertex>(
      std::max_element(estimate.begin(), estimate.end()) - estimate.begin());
  std::printf("top junction by exact scores: %u, by sampled scores: %u%s\n",
              lc.to_global[exact_top], lc.to_global[est_top],
              exact_top == est_top ? "  (agrees)" : "");
  return 0;
}
