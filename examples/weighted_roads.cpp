// Weighted betweenness on a road network where edges carry travel times —
// the weighted extension (bc/weighted.hpp). Shows that weighting changes
// the critical-junction ranking: a long detour edge loses traffic that the
// unweighted hop metric would assign to it, and that weighted APGRE agrees
// with weighted Brandes while skipping the pendant/AP redundancy.
#include <algorithm>
#include <cstdio>

#include "bc/brandes.hpp"
#include "bc/weighted.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "graph/weighted.hpp"
#include "support/timer.hpp"

int main() {
  using namespace apgre;

  CsrGraph shape = road_grid(36, 36, 0.25, 0.08, /*seed=*/12);
  shape = attach_pendants(shape, 220, 13);  // dead-end streets
  const InducedSubgraph lc = largest_component(shape);
  // Travel times 1..9 minutes per segment.
  const WeightedCsrGraph roads = with_random_weights(lc.graph, 1, 9, 14);
  std::printf("road network: %u junctions, %llu segments (weights = minutes)\n",
              roads.num_vertices(),
              static_cast<unsigned long long>(roads.num_arcs() / 2));

  Timer brandes_timer;
  const auto exact = weighted_brandes_bc(roads);
  const double brandes_s = brandes_timer.seconds();

  Timer apgre_timer;
  ApgreStats stats;
  const auto fast = weighted_apgre_bc(roads, {}, &stats);
  const double apgre_s = apgre_timer.seconds();

  double max_dev = 0.0;
  for (Vertex v = 0; v < roads.num_vertices(); ++v) {
    max_dev = std::max(max_dev, std::abs(exact[v] - fast[v]) /
                                    std::max(1.0, exact[v]));
  }
  std::printf("weighted Brandes %.3f s, weighted APGRE %.3f s (%.2fx, "
              "%u pendants derived, max deviation %.1e)\n",
              brandes_s, apgre_s, brandes_s / apgre_s,
              stats.num_pendants_removed, max_dev);

  // Compare against the hop-count (unweighted) ranking.
  const auto hops = brandes_bc(lc.graph);
  auto top_of = [&](const std::vector<double>& scores) {
    return static_cast<Vertex>(std::max_element(scores.begin(), scores.end()) -
                               scores.begin());
  };
  const Vertex weighted_top = top_of(exact);
  const Vertex hop_top = top_of(hops);
  std::printf("\nbusiest junction by travel time: %u (load %.0f)\n",
              weighted_top, exact[weighted_top]);
  std::printf("busiest junction by hop count:   %u (load %.0f)\n", hop_top,
              hops[hop_top]);
  std::printf(weighted_top == hop_top
                  ? "the two metrics agree on this network.\n"
                  : "travel-time weighting shifts the critical junction.\n");
  return 0;
}
