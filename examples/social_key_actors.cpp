// Key-actor analysis in a social/communication network (paper §1: community
// detection and identifying key actors). Builds a community-structured
// network, ranks members by betweenness, and contrasts BC rank with degree
// rank: the actors APGRE surfaces are the *brokers* bridging communities,
// who are often not the highest-degree members.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bc/bc.hpp"
#include "bcc/articulation.hpp"
#include "graph/generators.hpp"
#include "graph/io_graphml.hpp"
#include "graph/transform.hpp"

int main() {
  using namespace apgre;

  // 40 communities of 12 members bridged by single links, plus casual
  // one-contact members hanging off random actors.
  const CsrGraph graph = attach_pendants(caveman(40, 12, /*seed=*/2016), 200, 9);
  std::printf("social network: %u actors, %llu ties\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  BcOptions opts;
  opts.undirected_halving = true;  // conventional undirected BC
  const BcResult result = betweenness(graph, opts);
  std::printf("BC computed in %.3f s via APGRE (%zu communities detected as "
              "sub-graphs)\n\n",
              result.seconds, result.apgre_stats.num_subgraphs);

  const auto is_ap = articulation_points(graph);

  std::vector<Vertex> by_bc(graph.num_vertices());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) by_bc[v] = v;
  auto by_degree = by_bc;
  std::sort(by_bc.begin(), by_bc.end(), [&](Vertex a, Vertex b) {
    return result.scores[a] > result.scores[b];
  });
  std::sort(by_degree.begin(), by_degree.end(), [&](Vertex a, Vertex b) {
    return graph.out_degree(a) > graph.out_degree(b);
  });

  std::printf("top-10 brokers by betweenness (vs their degree rank):\n");
  for (int i = 0; i < 10; ++i) {
    const Vertex v = by_bc[static_cast<std::size_t>(i)];
    const auto degree_rank = static_cast<long>(
        std::find(by_degree.begin(), by_degree.end(), v) - by_degree.begin());
    std::printf("  #%2d actor %4u  BC %10.1f  degree %2u (degree rank %4ld)%s\n",
                i + 1, v, result.scores[v], graph.out_degree(v), degree_rank + 1,
                is_ap[v] ? "  [articulation point]" : "");
  }

  // Broker property: the top BC actors should overwhelmingly be the
  // articulation points stitching communities together.
  int ap_in_top10 = 0;
  for (int i = 0; i < 10; ++i) ap_in_top10 += is_ap[by_bc[static_cast<std::size_t>(i)]];
  std::printf("\n%d of the top-10 brokers are articulation points — removing "
              "them fragments the network.\n",
              ap_in_top10);

  // Hand-off to visualisation: GraphML with the scores as a node attribute
  // ("colour by betweenness" in Gephi/Cytoscape).
  const std::string graphml_path = "social_key_actors.graphml";
  write_graphml_file(graphml_path, graph, {{"betweenness", &result.scores}});
  std::printf("wrote %s for visualisation.\n", graphml_path.c_str());
  return 0;
}
