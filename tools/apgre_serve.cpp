// apgre_serve: line-oriented JSON front-end for apgre::Service.
//
// Reads one JSON request object per line from stdin and writes one JSON
// response object per line to stdout, so recorded load can be replayed
// from a file (`apgre_serve < transcript.jsonl`). Responses are emitted in
// request order; objects serialize key-sorted (support/json), so a replay
// is byte-stable — timing fields are only included under --timing.
//
// Protocol (docs/API.md "Serving requests" + "Protocol v2"):
//   {"op":"register","graph":"g","edges":[[0,1],...],"vertices":4,
//    "directed":false}            or  {...,"path":"graph.snap"}
//   {"op":"solve","graph":"g","algorithm":"apgre","threads":0,
//    "undirected_halving":false,"samples":0,"seed":1}
//   {"op":"top_k","graph":"g","k":5,...solve fields...}
//   {"op":"update","graph":"g","u":0,"v":2,"insert":true}
//   {"op":"batch_update","graph":"g",
//    "ops":[{"u":0,"v":2,"insert":true,"w":1.0,"t":0},...]}
//                                  or  {...,"path":"stream.apgb"}  (binary
//                                  edge-batch frames, one batch per frame,
//                                  applied in file order)
//   {"op":"batch","requests":[...solve/top_k/update/batch_update...]}
//   {"op":"unregister","graph":"g"} | {"op":"graphs"} | {"op":"stats"} |
//   {"op":"evict"} | {"op":"quit"}
//
// Versioning: every request may carry "v" (1 when absent). v1 requests are
// answered byte-identically to the pre-batch protocol; "v":2 requests get
// the same reply plus an echoed "v":2 key. batch_update is the v2 verb but
// is accepted under either framing. Unsupported versions answer an error.
// Exception: the legacy `update` verb spends "v" on an edge endpoint, so
// it is always treated as protocol v1.
//
// Malformed lines and failed requests answer {"ok":false,"error":...} and
// the server keeps reading. Exit codes: 0 on EOF or quit, 2 on usage
// errors.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/io_snap.hpp"
#include "graph/update.hpp"
#include "service/service.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/json.hpp"

namespace apgre {
namespace {

Vertex as_vertex(const JsonValue& value) {
  const double d = value.as_double();
  APGRE_REQUIRE(d >= 0.0, "vertex ids must be non-negative");
  return static_cast<Vertex>(d);
}

JsonValue error_line(const std::string& why) {
  JsonValue out;
  out["ok"] = JsonValue(false);
  out["error"] = JsonValue(why);
  return out;
}

/// Parse one inline edge op of a batch_update request.
EdgeOp parse_edge_op(const JsonValue& item) {
  EdgeOp op;
  op.u = as_vertex(item.at("u"));
  op.v = as_vertex(item.at("v"));
  if (item.contains("insert")) op.insert = item.at("insert").as_bool();
  if (item.contains("w")) op.weight = item.at("w").as_double();
  if (item.contains("t")) {
    const double t = item.at("t").as_double();
    APGRE_REQUIRE(t >= 0.0, "timestamps must be non-negative");
    op.timestamp = static_cast<std::uint64_t>(t);
  }
  return op;
}

/// Parse the shared solve/top_k/update/batch_update fields of one request
/// object (everything the service executes; admin verbs are handled in
/// serve_line directly).
Request parse_request(const JsonValue& obj, const std::string& op) {
  APGRE_REQUIRE(op == "solve" || op == "top_k" || op == "update" ||
                    op == "batch_update",
                "expected a solve/top_k/update/batch_update request, got op: " +
                    op);
  Request request;
  request.graph = obj.at("graph").as_string();
  if (op == "update") {
    request.kind = RequestKind::kUpdate;
    request.u = as_vertex(obj.at("u"));
    request.v = as_vertex(obj.at("v"));
    if (obj.contains("insert")) request.inserting = obj.at("insert").as_bool();
    return request;
  }
  if (op == "batch_update") {
    request.kind = RequestKind::kUpdateBatch;
    for (const JsonValue& item : obj.at("ops").as_array()) {
      request.update.ops.push_back(parse_edge_op(item));
    }
    return request;
  }
  request.kind = op == "top_k" ? RequestKind::kTopK : RequestKind::kSolve;
  if (obj.contains("algorithm")) {
    request.options.algorithm =
        algorithm_from_name(obj.at("algorithm").as_string());
  }
  request.options.threads = static_cast<int>(obj.get("threads", 0.0));
  if (obj.contains("undirected_halving")) {
    request.options.undirected_halving =
        obj.at("undirected_halving").as_bool();
  }
  request.options.num_samples =
      static_cast<Vertex>(obj.get("samples", 0.0));
  request.options.seed = static_cast<std::uint64_t>(obj.get("seed", 1.0));
  if (request.kind == RequestKind::kTopK) {
    request.k = static_cast<Vertex>(obj.get("k", 10.0));
  }
  return request;
}

JsonValue render_response(const Request& request, const Response& response,
                          bool timing) {
  JsonValue out;
  out["ok"] = JsonValue(response.ok);
  out["graph"] = JsonValue(request.graph);
  if (!response.ok) {
    out["error"] = JsonValue(response.error);
    return out;
  }
  switch (response.kind) {
    case RequestKind::kSolve: {
      out["op"] = JsonValue("solve");
      out["session_hit"] = JsonValue(response.session_hit);
      JsonValue scores;
      for (double score : response.scores) scores.push_back(JsonValue(score));
      out["scores"] = std::move(scores);
      break;
    }
    case RequestKind::kTopK: {
      out["op"] = JsonValue("top_k");
      out["session_hit"] = JsonValue(response.session_hit);
      JsonValue top;
      for (const TopEntry& entry : response.top) {
        JsonValue row;
        row["vertex"] = JsonValue(static_cast<std::uint64_t>(entry.vertex));
        row["score"] = JsonValue(entry.score);
        top.push_back(std::move(row));
      }
      out["top"] = std::move(top);
      break;
    }
    case RequestKind::kUpdate: {
      out["op"] = JsonValue("update");
      out["affected_sources"] =
          JsonValue(static_cast<std::uint64_t>(response.affected_sources));
      out["locality"] = JsonValue(
          response.locality == UpdateLocality::kLocalInsert ? "local_insert"
          : response.locality == UpdateLocality::kLocalDelete
              ? "local_delete"
              : "structural");
      break;
    }
    case RequestKind::kUpdateBatch: {
      out["op"] = JsonValue("batch_update");
      out["affected_sources"] =
          JsonValue(static_cast<std::uint64_t>(response.affected_sources));
      out["batch_edges"] = JsonValue(response.batch.batch_edges);
      out["coalesced_away"] = JsonValue(response.batch.coalesced_away);
      out["blocks_resolved"] = JsonValue(response.batch.blocks_resolved);
      out["downgraded"] = JsonValue(response.batch.batch_downgrades > 0);
      break;
    }
  }
  if (timing) out["seconds"] = JsonValue(response.seconds);
  return out;
}

JsonValue handle_register(Service& service, const JsonValue& obj) {
  const std::string name = obj.at("graph").as_string();
  const bool directed =
      obj.contains("directed") && obj.at("directed").as_bool();
  CsrGraph graph;
  if (obj.contains("path")) {
    graph = read_snap_file(obj.at("path").as_string(), directed).graph;
  } else {
    EdgeList edges;
    Vertex max_vertex = 0;
    for (const JsonValue& pair : obj.at("edges").as_array()) {
      const auto& endpoints = pair.as_array();
      APGRE_REQUIRE(endpoints.size() == 2, "edges must be [u, v] pairs");
      const Edge e{as_vertex(endpoints[0]), as_vertex(endpoints[1])};
      max_vertex = std::max({max_vertex, e.src, e.dst});
      edges.push_back(e);
    }
    auto vertices = static_cast<Vertex>(obj.get("vertices", 0.0));
    if (!edges.empty()) vertices = std::max(vertices, max_vertex + 1);
    graph = directed
                ? CsrGraph::from_edges(vertices, std::move(edges), true)
                : CsrGraph::undirected_from_edges(vertices, std::move(edges));
  }

  const auto vertices = static_cast<std::uint64_t>(graph.num_vertices());
  const std::uint64_t arcs = graph.num_arcs();
  const Status status = service.register_graph(name, std::move(graph));
  if (!status.ok()) return error_line(status.message);
  JsonValue out;
  out["ok"] = JsonValue(true);
  out["op"] = JsonValue("register");
  out["graph"] = JsonValue(name);
  out["vertices"] = JsonValue(vertices);
  out["arcs"] = JsonValue(arcs);
  return out;
}

/// Path-based batch_update: apply each binary frame of the replay file as
/// one batch, in file order, stopping at the first failure.
JsonValue handle_batch_file(Service& service, const JsonValue& obj) {
  const std::string graph = obj.at("graph").as_string();
  const std::vector<UpdateRequest> frames =
      read_edge_batch_file(obj.at("path").as_string());
  Request request;
  request.kind = RequestKind::kUpdateBatch;
  request.graph = graph;
  BatchStats total;
  Vertex affected = 0;
  bool downgraded = false;
  std::uint64_t frames_applied = 0;
  for (const UpdateRequest& frame : frames) {
    request.update = frame;
    const Response response = service.handle(request);
    if (!response.ok) return error_line(response.error);
    total.batch_edges += response.batch.batch_edges;
    total.coalesced_away += response.batch.coalesced_away;
    total.blocks_resolved += response.batch.blocks_resolved;
    total.batch_downgrades += response.batch.batch_downgrades;
    affected += response.affected_sources;
    downgraded |= response.batch.batch_downgrades > 0;
    ++frames_applied;
  }
  JsonValue out;
  out["ok"] = JsonValue(true);
  out["op"] = JsonValue("batch_update");
  out["graph"] = JsonValue(graph);
  out["frames"] = JsonValue(frames_applied);
  out["affected_sources"] = JsonValue(static_cast<std::uint64_t>(affected));
  out["batch_edges"] = JsonValue(total.batch_edges);
  out["coalesced_away"] = JsonValue(total.coalesced_away);
  out["blocks_resolved"] = JsonValue(total.blocks_resolved);
  out["downgraded"] = JsonValue(downgraded);
  return out;
}

JsonValue render_stats(const Service& service) {
  const ServiceStats stats = service.stats();
  JsonValue s;
  s["requests"] = JsonValue(stats.requests);
  s["solves"] = JsonValue(stats.solves);
  s["top_k"] = JsonValue(stats.top_k);
  s["updates"] = JsonValue(stats.updates);
  s["errors"] = JsonValue(stats.errors);
  s["session_hits"] = JsonValue(stats.session_hits);
  s["session_misses"] = JsonValue(stats.session_misses);
  s["session_evictions"] = JsonValue(stats.session_evictions);
  s["updates_local"] = JsonValue(stats.updates_local);
  s["updates_structural"] = JsonValue(stats.updates_structural);
  s["local_recomputes"] = JsonValue(stats.local_recomputes);
  s["full_invalidations"] = JsonValue(stats.full_invalidations);
  s["batch_updates"] = JsonValue(stats.batch_updates);
  s["batch_edges"] = JsonValue(stats.batch_edges);
  s["coalesced_away"] = JsonValue(stats.coalesced_away);
  s["blocks_resolved"] = JsonValue(stats.blocks_resolved);
  s["batch_downgrades"] = JsonValue(stats.batch_downgrades);
  s["hit_rate"] = JsonValue(stats.hit_rate());
  JsonValue out;
  out["ok"] = JsonValue(true);
  out["op"] = JsonValue("stats");
  out["stats"] = std::move(s);
  out["sessions"] = JsonValue(static_cast<std::uint64_t>(service.session_count()));
  return out;
}

/// Returns false when the server should stop (quit).
bool serve_line(Service& service, const std::string& line, bool timing,
                std::ostream& out) {
  JsonValue reply;
  bool keep_going = true;
  bool v2 = false;
  try {
    const JsonValue obj = JsonValue::parse(line);
    const std::string op = obj.at("op").as_string();
    // The legacy `update` verb spends "v" on an edge endpoint, so it is
    // pinned to protocol v1; every other verb may declare {"v":2}.
    if (op != "update") {
      const double version = obj.get("v", 1.0);
      APGRE_REQUIRE(version == 1.0 || version == 2.0,
                    "unsupported protocol version: " +
                        std::to_string(static_cast<long long>(version)));
      v2 = version == 2.0;
    }
    if (op == "quit") {
      reply["ok"] = JsonValue(true);
      reply["op"] = JsonValue("quit");
      keep_going = false;
    } else if (op == "register") {
      reply = handle_register(service, obj);
    } else if (op == "unregister") {
      const std::string name = obj.at("graph").as_string();
      reply["ok"] = JsonValue(true);
      reply["op"] = JsonValue("unregister");
      reply["graph"] = JsonValue(name);
      reply["existed"] = JsonValue(service.unregister_graph(name));
    } else if (op == "graphs") {
      reply["ok"] = JsonValue(true);
      reply["op"] = JsonValue("graphs");
      JsonValue names{JsonValue::Array{}};  // explicit: [] even when empty
      for (const std::string& name : service.graph_names()) {
        names.push_back(JsonValue(name));
      }
      reply["graphs"] = std::move(names);
    } else if (op == "stats") {
      reply = render_stats(service);
    } else if (op == "evict") {
      reply["ok"] = JsonValue(true);
      reply["op"] = JsonValue("evict");
      reply["dropped"] =
          JsonValue(static_cast<std::uint64_t>(service.evict_sessions()));
    } else if (op == "batch") {
      // Fan the sub-requests across the worker pool; responses come back
      // in request order.
      std::vector<Request> requests;
      for (const JsonValue& sub : obj.at("requests").as_array()) {
        requests.push_back(parse_request(sub, sub.at("op").as_string()));
      }
      const std::vector<Request> parsed = requests;  // run_batch consumes
      std::vector<Response> responses = service.run_batch(std::move(requests));
      reply["ok"] = JsonValue(true);
      reply["op"] = JsonValue("batch");
      JsonValue rendered;
      for (std::size_t i = 0; i < responses.size(); ++i) {
        rendered.push_back(render_response(parsed[i], responses[i], timing));
      }
      reply["responses"] = std::move(rendered);
    } else if (op == "batch_update" && obj.contains("path")) {
      reply = handle_batch_file(service, obj);
    } else if (op == "solve" || op == "top_k" || op == "update" ||
               op == "batch_update") {
      const Request request = parse_request(obj, op);
      reply = render_response(request, service.handle(request), timing);
    } else {
      reply = error_line("unknown op: " + op);
    }
  } catch (const Error& e) {
    reply = error_line(e.what());
  }
  // v2 replies echo the protocol version; v1 replies stay byte-stable.
  if (v2) reply["v"] = JsonValue(static_cast<std::uint64_t>(2));
  out << reply.dump() << "\n" << std::flush;
  return keep_going;
}

int serve_main(int argc, char** argv) {
  FlagParser flags(
      "apgre_serve: line-oriented JSON BC query service on stdin/stdout");
  flags.add_int("workers", 4, "worker threads draining the request queue");
  flags.add_int("capacity", 8, "warm solver sessions kept in the LRU cache");
  flags.add_bool("timing", false,
                 "include wall-time fields in responses (off keeps replay "
                 "output byte-stable)");

  try {
    const std::vector<std::string> positional = flags.parse(argc, argv);
    if (flags.help_requested()) {
      std::cout << flags.help();
      return 0;
    }
    if (!positional.empty()) {
      throw OptionError("apgre_serve takes no positional arguments");
    }
    ServiceOptions options;
    options.workers = static_cast<int>(flags.get_int("workers"));
    options.session_capacity =
        static_cast<std::size_t>(flags.get_int("capacity"));
    const bool timing = flags.get_bool("timing");

    Service service(options);
    for (std::string line; std::getline(std::cin, line);) {
      if (line.empty()) continue;
      if (!serve_line(service, line, timing, std::cout)) break;
    }
    return 0;
  } catch (const Error& e) {
    // FlagParser reports unknown flags as plain Error; both are usage.
    std::cerr << "usage error: " << e.what() << "\n" << flags.help();
    return 2;
  }
}

}  // namespace
}  // namespace apgre

int main(int argc, char** argv) { return apgre::serve_main(argc, argv); }
