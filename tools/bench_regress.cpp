// bench_regress — gated performance-regression harness.
//
//   bench_regress --repeat 5 --out BENCH_head.json
//   bench_regress --baseline BENCH_main.json --threshold 0.3
//   bench_regress --graphs both --algo-set serial,apgre --out bench.json
//
// Runs the seeded check corpus (and optionally the Table-1 workload
// analogues) across a chosen algorithm set, records median / p90 wall time
// and MTEPS over N repetitions plus a metrics-registry snapshot and
// aggregated tracing spans, and emits a schema-versioned JSON report.
// In --baseline mode the current run is compared against a previous report:
// any (graph, algorithm) pair whose median slows down by more than
// --threshold (relative) fails the gate.
//
// Exit status: 0 clean, 1 at least one regression, 2 usage error or a
// malformed / schema-incompatible baseline. docs/OBSERVABILITY.md describes
// the report format and how CI refreshes its baseline artifact.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bc/bc.hpp"
#include "bc/incremental.hpp"
#include "bcc/bicomp.hpp"
#include "bcc/parallel_bicomp.hpp"
#include "bcc/queries.hpp"
#include "check/corpus.hpp"
#include "graph/generators.hpp"
#include "graph/mutate.hpp"
#include "graph/transform.hpp"
#include "graph/update.hpp"
#include "service/service.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"
#include "workloads.hpp"

namespace {

using namespace apgre;

constexpr std::int64_t kSchemaVersion = 1;

/// One measured column of the report: a label plus the options that
/// produce it. Labels are registry names, except `apgre_flat` — APGRE
/// with the work-stealing scheduler disabled, kept in the default set so
/// every report records the flat-vs-scheduled comparison.
struct MeasureSpec {
  std::string label;
  BcOptions opts;
};

std::vector<MeasureSpec> parse_algo_set(const std::string& spec) {
  std::vector<MeasureSpec> set;
  auto add = [&set](const std::string& name) {
    MeasureSpec m;
    m.label = name;
    if (name == "apgre_flat") {
      m.opts.algorithm = Algorithm::kApgre;
      m.opts.scheduler.enabled = false;
    } else {
      m.opts.algorithm = algorithm_from_name(name);
    }
    set.push_back(std::move(m));
  };
  std::stringstream ss(spec);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (name.empty()) continue;
    if (name == "exact") {
      // Registry-derived default: every exact non-oracle algorithm, plus
      // the flat-loop APGRE variant.
      for (const AlgorithmInfo& info : algorithm_registry()) {
        if (info.exact && !info.test_only) add(info.name);
      }
      add("apgre_flat");
    } else {
      add(name);
    }
  }
  APGRE_REQUIRE(!set.empty(), "--algo-set selected no algorithms");
  return set;
}

struct BenchGraph {
  std::string name;
  CsrGraph graph;
};

std::vector<BenchGraph> build_graph_list(const std::string& graphs,
                                         std::uint64_t seed, double scale) {
  APGRE_REQUIRE(graphs == "corpus" || graphs == "workloads" || graphs == "both",
                "--graphs must be corpus, workloads or both");
  std::vector<BenchGraph> list;
  if (graphs != "workloads") {
    for (CorpusCase& c : graph_corpus(seed, /*tiny=*/false)) {
      list.push_back({"corpus/" + c.name, std::move(c.graph)});
    }
  }
  if (graphs != "corpus") {
    for (const bench::Workload& w : bench::all_workloads(scale)) {
      list.push_back({"workload/" + w.id, w.build()});
    }
  }
  // The scheduler's skewed-decomposition stress graph rides along in every
  // set, so the flat-vs-scheduled comparison is recorded per report.
  const bench::Workload skew = bench::skewed_workload(scale);
  list.push_back({"workload/" + skew.id, skew.build()});
  return list;
}

/// Aggregate the drained spans as name -> {count, total_seconds}.
JsonValue aggregate_spans(const std::vector<SpanRecord>& spans) {
  std::map<std::string, std::pair<std::int64_t, double>> agg;
  for (const SpanRecord& s : spans) {
    auto& [count, total] = agg[s.name];
    ++count;
    total += s.elapsed_seconds();
  }
  JsonValue::Object out;
  for (const auto& [name, pair] : agg) {
    JsonValue::Object entry;
    entry["count"] = JsonValue(pair.first);
    entry["total_seconds"] = JsonValue(pair.second);
    out[name] = JsonValue(std::move(entry));
  }
  return JsonValue(std::move(out));
}

/// Non-zero registry entries as name -> number (histograms as {count, sum}).
JsonValue snapshot_metrics() {
  JsonValue::Object out;
  for (const MetricSample& s : metrics().snapshot()) {
    if (s.kind == MetricKind::kHistogram) {
      if (s.number == 0.0) continue;  // no observations
      JsonValue::Object h;
      h["count"] = JsonValue(s.number);
      h["sum"] = JsonValue(s.histogram_sum);
      out[s.name] = JsonValue(std::move(h));
    } else if (s.number != 0.0) {
      out[s.name] = JsonValue(s.number);
    }
  }
  return JsonValue(std::move(out));
}

JsonValue measure(const BenchGraph& bg, const MeasureSpec& spec, int repeat,
                  int warmup, int threads) {
  BcOptions opts = spec.opts;
  opts.threads = threads;
  for (int i = 0; i < warmup; ++i) betweenness(bg.graph, opts);
  metrics().reset();
  clear_spans();

  std::vector<double> seconds;
  std::vector<double> mteps;
  seconds.reserve(static_cast<std::size_t>(repeat));
  for (int i = 0; i < repeat; ++i) {
    const BcResult r = betweenness(bg.graph, opts);
    APGRE_REQUIRE(r.status.ok(), spec.label + ": " + r.status.message);
    seconds.push_back(r.seconds);
    mteps.push_back(r.mteps);
  }

  JsonValue::Object out;
  out["reps"] = JsonValue(static_cast<std::int64_t>(repeat));
  out["seconds_median"] = JsonValue(percentile(seconds, 50.0));
  out["seconds_p90"] = JsonValue(percentile(seconds, 90.0));
  out["seconds_min"] = JsonValue(*std::min_element(seconds.begin(), seconds.end()));
  out["mteps_median"] = JsonValue(percentile(mteps, 50.0));
  out["metrics"] = snapshot_metrics();
  out["spans"] = aggregate_spans(collect_spans());
  return JsonValue(std::move(out));
}

/// --workload service: measure request throughput of an apgre::Service
/// under `clients` concurrent client threads, each issuing `per_client`
/// mixed solve / top_k / update requests (deterministic per-client request
/// streams) over the tiny seeded corpus. Returns the report's "service"
/// object: requests/sec, the warm-session hit rate, and the raw counters.
JsonValue run_service_workload(std::uint64_t seed, int clients,
                               int per_client, int threads) {
  ServiceOptions options;
  options.workers = threads > 0 ? threads : 4;
  options.session_capacity = 4;
  Service service(options);

  std::vector<std::string> names;
  for (CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
    names.push_back(c.name);
    service.register_graph(c.name, std::move(c.graph));
  }
  APGRE_REQUIRE(!names.empty(), "service workload: empty corpus");

  Timer timer;
  std::atomic<std::uint64_t> issued{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      std::mt19937_64 rng(seed * 1000003 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < per_client; ++i) {
        Request request;
        request.graph = names[rng() % names.size()];
        const std::uint64_t roll = rng() % 10;
        if (roll < 5) {
          request.kind = RequestKind::kTopK;
          request.k = 8;
          request.options.algorithm = Algorithm::kBrandesSerial;
        } else if (roll < 8) {
          request.kind = RequestKind::kSolve;
          request.options.algorithm = Algorithm::kApgre;
        } else {
          request.kind = RequestKind::kUpdate;
          const auto snap = service.snapshot(request.graph);
          const Vertex n = snap == nullptr ? 0 : snap->num_vertices();
          if (n < 2) continue;
          request.u = static_cast<Vertex>(rng() % n);
          request.v = static_cast<Vertex>(rng() % n);
          // Duplicate inserts / self-loops come back as error responses;
          // they still exercise the queue and are counted as requests.
        }
        service.submit(std::move(request)).get();
        issued.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double elapsed = timer.seconds();

  const ServiceStats stats = service.stats();
  JsonValue::Object out;
  out["clients"] = JsonValue(static_cast<std::int64_t>(clients));
  out["requests_per_client"] = JsonValue(static_cast<std::int64_t>(per_client));
  out["requests"] = JsonValue(issued.load());
  out["elapsed_seconds"] = JsonValue(elapsed);
  out["requests_per_second"] =
      JsonValue(elapsed > 0.0 ? static_cast<double>(issued.load()) / elapsed
                              : 0.0);
  out["hit_rate"] = JsonValue(stats.hit_rate());
  JsonValue::Object counters;
  counters["solves"] = JsonValue(stats.solves);
  counters["top_k"] = JsonValue(stats.top_k);
  counters["updates"] = JsonValue(stats.updates);
  counters["updates_local"] = JsonValue(stats.updates_local);
  counters["updates_structural"] = JsonValue(stats.updates_structural);
  counters["errors"] = JsonValue(stats.errors);
  counters["session_hits"] = JsonValue(stats.session_hits);
  counters["session_misses"] = JsonValue(stats.session_misses);
  counters["session_evictions"] = JsonValue(stats.session_evictions);
  out["counters"] = JsonValue(std::move(counters));
  return JsonValue(std::move(out));
}

/// --workload service_parallel: the reentrancy benchmark. Every request is
/// a full solve with a *parallel* kernel (scheduled APGRE, flat APGRE,
/// hybrid, lock-free), issued synchronously by `clients` concurrent
/// threads. Before the scheduler went reentrant these solves serialized
/// behind one process-wide mutex, so aggregate requests/sec stayed flat as
/// clients grew; now they overlap, and this workload records the scaling
/// (aggregate requests/sec + per-solve latency percentiles, per algorithm
/// and overall) in the same schema-v1 report.
JsonValue run_service_parallel_workload(std::uint64_t seed, int clients,
                                        int per_client, int threads) {
  ServiceOptions options;
  options.workers = threads > 0 ? threads : std::max(clients, 1);
  options.session_capacity = 4;
  Service service(options);

  std::vector<std::string> names;
  for (CorpusCase& c : graph_corpus(seed, /*tiny=*/true)) {
    names.push_back(c.name);
    service.register_graph(c.name, std::move(c.graph));
  }
  APGRE_REQUIRE(!names.empty(), "service_parallel workload: empty corpus");

  struct AlgoSpec {
    const char* label;
    Algorithm algorithm;
    bool scheduler_enabled;
  };
  const AlgoSpec algos[] = {
      {"apgre", Algorithm::kApgre, true},
      {"apgre_flat", Algorithm::kApgre, false},
      {"hybrid", Algorithm::kHybrid, true},
      {"lockfree", Algorithm::kLockFree, true},
  };
  constexpr std::size_t kAlgos = sizeof(algos) / sizeof(algos[0]);

  // Per-client latency samples, merged after the join (no shared mutable
  // state on the hot path).
  std::vector<std::vector<std::pair<std::size_t, double>>> samples(
      static_cast<std::size_t>(clients));
  std::atomic<std::uint64_t> failed{0};

  Timer timer;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      std::mt19937_64 rng(seed * 1000003 + static_cast<std::uint64_t>(c));
      auto& local = samples[static_cast<std::size_t>(c)];
      local.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const std::size_t a = rng() % kAlgos;
        Request request;
        request.kind = RequestKind::kSolve;
        request.graph = names[rng() % names.size()];
        request.options.algorithm = algos[a].algorithm;
        request.options.scheduler.enabled = algos[a].scheduler_enabled;
        Timer solve_timer;
        const Response r = service.submit(std::move(request)).get();
        if (!r.ok) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        local.emplace_back(a, solve_timer.seconds());
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double elapsed = timer.seconds();

  std::vector<double> all_latencies;
  std::vector<std::vector<double>> per_algo(kAlgos);
  for (const auto& client : samples) {
    for (const auto& [a, secs] : client) {
      all_latencies.push_back(secs);
      per_algo[a].push_back(secs);
    }
  }
  APGRE_REQUIRE(!all_latencies.empty(),
                "service_parallel workload: every request failed");

  JsonValue::Object out;
  out["clients"] = JsonValue(static_cast<std::int64_t>(clients));
  out["requests_per_client"] = JsonValue(static_cast<std::int64_t>(per_client));
  out["requests"] =
      JsonValue(static_cast<std::int64_t>(all_latencies.size()));
  out["failed"] = JsonValue(failed.load());
  out["elapsed_seconds"] = JsonValue(elapsed);
  out["requests_per_second"] = JsonValue(
      elapsed > 0.0 ? static_cast<double>(all_latencies.size()) / elapsed
                    : 0.0);
  out["solve_seconds_p50"] = JsonValue(percentile(all_latencies, 50.0));
  out["solve_seconds_p90"] = JsonValue(percentile(all_latencies, 90.0));
  JsonValue::Object by_algo;
  for (std::size_t a = 0; a < kAlgos; ++a) {
    if (per_algo[a].empty()) continue;
    JsonValue::Object entry;
    entry["requests"] =
        JsonValue(static_cast<std::int64_t>(per_algo[a].size()));
    entry["solve_seconds_p50"] = JsonValue(percentile(per_algo[a], 50.0));
    entry["solve_seconds_p90"] = JsonValue(percentile(per_algo[a], 90.0));
    by_algo[algos[a].label] = JsonValue(std::move(entry));
  }
  out["algorithms"] = JsonValue(std::move(by_algo));
  return JsonValue(std::move(out));
}

/// --workload updates: sustained updates/sec of the BCC-localized
/// incremental path (bc/incremental.hpp) vs a full re-solve per update, on
/// a many-block caveman graph (>= 10 biconnected components chained by
/// articulation points). merge_threshold drops to 2 so every clique is its
/// own sub-graph — the geometry the localized path exists for. The
/// trajectory alternates delete / re-insert over intra-clique edges whose
/// endpoints are non-articulation vertices, so every step classifies
/// kLocalDelete / kLocalInsert; the workload asserts the localized run
/// never re-decomposed ("bcc.decompositions" stays flat) and that the
/// final incremental scores match a fresh serial solve.
JsonValue run_updates_workload(std::uint64_t seed, int updates, double scale) {
  const Vertex cliques = 32;
  const Vertex clique_size =
      std::max<Vertex>(6, static_cast<Vertex>(32.0 * scale));
  const CsrGraph graph = caveman(cliques, clique_size, seed);

  BcOptions opts;
  opts.algorithm = Algorithm::kApgre;
  // Default grouping would merge the small cliques into few sub-graphs and
  // re-score most of the graph per update; one block per sub-graph is the
  // honest localized-update geometry.
  opts.apgre.partition.merge_threshold = 2;

  // Candidate edges: intra-clique, both endpoints non-AP, so delete AND
  // re-insert stay local and the trajectory can loop forever.
  const BlockCutQueries queries(graph);
  std::vector<Edge> candidates;
  for (Vertex u = 0; u < graph.num_vertices(); ++u) {
    for (Vertex v : graph.out_neighbors(u)) {
      if (u >= v) continue;
      // Non-AP endpoints guarantee the re-insert also classifies
      // kLocalInsert, so the alternating trajectory never goes structural.
      if (queries.classify_update(u, v, /*inserting=*/false) ==
              UpdateLocality::kLocalDelete &&
          !queries.bcc().is_articulation[u] &&
          !queries.bcc().is_articulation[v]) {
        candidates.push_back(Edge{u, v});
      }
    }
  }
  APGRE_REQUIRE(!candidates.empty(), "updates workload: no local candidates");

  // Localized path.
  IncrementalBc engine(graph, opts);
  const std::size_t blocks = engine.graph().num_vertices() == 0
                                 ? 0
                                 : queries.bcc().num_components;
  const std::uint64_t decompositions_before =
      metrics().counter("bcc.decompositions").value();
  // Delete then immediately re-insert each candidate (round-robin): the
  // graph never strays more than one edge from the original, so every
  // delete sees a still-biconnected block and every step stays local.
  // Deleting many edges before re-inserting would genuinely reshape the
  // block-cut tree (a vertex stripped to degree one goes pendant) and the
  // classifier would — correctly — go structural.
  Timer local_timer;
  for (int i = 0; i < updates; ++i) {
    const Edge e =
        candidates[static_cast<std::size_t>(i / 2) % candidates.size()];
    if (i % 2 == 0) {
      engine.remove_edge(e.src, e.dst);
    } else {
      engine.insert_edge(e.src, e.dst);
    }
  }
  const double local_elapsed = local_timer.seconds();
  const std::uint64_t decompositions =
      metrics().counter("bcc.decompositions").value() - decompositions_before;
  APGRE_REQUIRE(engine.stats().structural_resolves == 0,
                "updates workload: localized path fell back to a full solve "
                "(" + std::to_string(engine.stats().structural_resolves) +
                    " of " + std::to_string(updates) + " steps)");
  APGRE_REQUIRE(decompositions == 0,
                "updates workload: localized path re-decomposed");

  // Full-re-solve baseline: mutate + fresh decomposition + solve per
  // update, over the same trajectory prefix (capped — it is the slow side).
  const int full_updates = std::min(updates, 16);
  CsrGraph full_graph = graph;
  Timer full_timer;
  for (int i = 0; i < full_updates; ++i) {
    const Edge e =
        candidates[static_cast<std::size_t>(i / 2) % candidates.size()];
    full_graph = i % 2 == 0 ? with_edge_removed(full_graph, e.src, e.dst)
                            : with_edge_inserted(full_graph, e.src, e.dst);
    const BcResult r = betweenness(full_graph, opts);
    APGRE_REQUIRE(r.status.ok(), "updates workload: " + r.status.message);
  }
  const double full_elapsed = full_timer.seconds();

  // Exactness: the incremental scores must match a fresh static solve of
  // the final graph (the bench's own oracle diff, oracle tolerance).
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const std::vector<double> expected =
      betweenness(engine.graph(), serial).scores;
  for (Vertex v = 0; v < engine.graph().num_vertices(); ++v) {
    const double a = expected[v];
    const double b = engine.scores()[v];
    APGRE_REQUIRE(
        std::abs(a - b) <= 1e-6 + 1e-7 * std::max(std::abs(a), std::abs(b)),
        "updates workload: incremental scores diverged from static solve");
  }

  const double local_ups =
      local_elapsed > 0.0 ? static_cast<double>(updates) / local_elapsed : 0.0;
  const double full_ups = full_elapsed > 0.0
                              ? static_cast<double>(full_updates) / full_elapsed
                              : 0.0;
  JsonValue::Object out;
  out["graph_vertices"] =
      JsonValue(static_cast<std::uint64_t>(graph.num_vertices()));
  out["graph_arcs"] = JsonValue(static_cast<std::uint64_t>(graph.num_arcs()));
  out["blocks"] = JsonValue(static_cast<std::uint64_t>(blocks));
  out["candidate_edges"] =
      JsonValue(static_cast<std::int64_t>(candidates.size()));
  out["updates"] = JsonValue(static_cast<std::int64_t>(updates));
  out["localized_elapsed_seconds"] = JsonValue(local_elapsed);
  out["localized_updates_per_second"] = JsonValue(local_ups);
  out["full_resolve_updates"] = JsonValue(static_cast<std::int64_t>(full_updates));
  out["full_resolve_elapsed_seconds"] = JsonValue(full_elapsed);
  out["full_resolve_updates_per_second"] = JsonValue(full_ups);
  out["speedup"] = JsonValue(full_ups > 0.0 ? local_ups / full_ups : 0.0);
  out["decompositions_during_trajectory"] = JsonValue(decompositions);
  JsonValue::Object counters;
  counters["local_inserts"] = JsonValue(engine.stats().local_inserts);
  counters["local_deletes"] = JsonValue(engine.stats().local_deletes);
  counters["structural_resolves"] =
      JsonValue(engine.stats().structural_resolves);
  out["engine"] = JsonValue(std::move(counters));
  return JsonValue(std::move(out));
}

/// --workload stream: sustained batched-ingest throughput of
/// IncrementalBc::apply_batch vs replaying the same ops one edge at a time
/// through the per-edge localized path. The trajectory alternates a batch
/// of `batch_size` vertex-disjoint non-AP chord deletions inside ONE
/// clique of a caveman graph with the batch re-inserting them, round-robin
/// over the cliques, so every batch classifies local and lands in a single
/// block — the geometry where whole-batch classification amortises k
/// per-edge block re-solves into one. merge_threshold drops to 2 (one
/// block per sub-graph), the workload asserts zero batch downgrades and a
/// flat "bcc.decompositions" counter across the batched run, and the final
/// incremental scores are diffed against a fresh serial Brandes solve.
/// `--stream-out` records the generated trajectory as binary edge-batch
/// frames (graph/update.hpp); `--stream-file` replays a recorded file
/// instead of generating; `--replay-speed N` paces batches by their
/// recorded millisecond timestamps at N× speed (0 = unpaced).
JsonValue run_stream_workload(std::uint64_t seed, int batches, int batch_size,
                              double scale, double replay_speed,
                              const std::string& stream_file,
                              const std::string& stream_out) {
  const Vertex cliques = 8;
  const Vertex clique_size =
      std::max<Vertex>(20, static_cast<Vertex>(56.0 * scale));
  const CsrGraph graph = caveman(cliques, clique_size, seed);

  BcOptions opts;
  opts.algorithm = Algorithm::kApgre;
  // One block per sub-graph: the honest localized geometry (see the
  // updates workload) and the one where blocks_resolved == affected blocks.
  opts.apgre.partition.merge_threshold = 2;

  // Per-block pools of vertex-disjoint chords with non-AP endpoints:
  // deleting the whole pool leaves every member at high degree, so the
  // block survives the net batch and the re-insert batch is pure chords.
  const BlockCutQueries queries(graph);
  std::map<Vertex, std::vector<Edge>> pool_of_block;
  {
    std::vector<bool> used(graph.num_vertices(), false);
    for (Vertex u = 0; u < graph.num_vertices(); ++u) {
      for (Vertex v : graph.out_neighbors(u)) {
        if (u >= v || used[u] || used[v]) continue;
        if (queries.bcc().is_articulation[u] ||
            queries.bcc().is_articulation[v]) {
          continue;
        }
        if (queries.classify_update(u, v, /*inserting=*/false) !=
            UpdateLocality::kLocalDelete) {
          continue;
        }
        const Vertex block = queries.common_block(u, v);
        auto& pool = pool_of_block[block];
        if (pool.size() >= static_cast<std::size_t>(batch_size)) continue;
        pool.push_back(Edge{u, v});
        used[u] = used[v] = true;
      }
    }
  }
  std::vector<std::vector<Edge>> pools;
  for (auto& [block, pool] : pool_of_block) {
    if (pool.size() == static_cast<std::size_t>(batch_size)) {
      pools.push_back(std::move(pool));
    }
  }
  APGRE_REQUIRE(!pools.empty(),
                "stream workload: no clique yields " +
                    std::to_string(batch_size) +
                    " disjoint chords; lower --batch-size or raise --scale");

  // Trajectory: batch 2i deletes clique (i % pools)'s chord pool, batch
  // 2i+1 re-inserts it. Timestamps are milliseconds, 100ms between batches
  // (only read back under --replay-speed pacing).
  std::vector<UpdateRequest> trajectory;
  if (stream_file.empty()) {
    trajectory.reserve(static_cast<std::size_t>(batches));
    for (int b = 0; b < batches; ++b) {
      const auto& pool = pools[static_cast<std::size_t>(b / 2) % pools.size()];
      UpdateRequest batch;
      batch.ops.reserve(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        EdgeOp op;
        op.u = pool[i].src;
        op.v = pool[i].dst;
        op.insert = b % 2 != 0;
        op.timestamp = static_cast<std::uint64_t>(b) * 100 + i;
        batch.ops.push_back(op);
      }
      trajectory.push_back(std::move(batch));
    }
    if (!stream_out.empty()) write_edge_batch_file(stream_out, trajectory);
  } else {
    trajectory = read_edge_batch_file(stream_file);
    APGRE_REQUIRE(!trajectory.empty(),
                  "stream workload: " + stream_file + " holds no batches");
  }

  // Batched run.
  IncrementalBc engine(graph, opts);
  const std::uint64_t decompositions_before =
      metrics().counter("bcc.decompositions").value();
  std::vector<double> batch_seconds;
  batch_seconds.reserve(trajectory.size());
  std::uint64_t ops_total = 0;
  Timer stream_timer;
  const std::uint64_t first_ts =
      trajectory.front().ops.empty() ? 0 : trajectory.front().ops.front().timestamp;
  for (const UpdateRequest& batch : trajectory) {
    if (replay_speed > 0.0 && !batch.ops.empty()) {
      const double due_ms = static_cast<double>(batch.ops.front().timestamp -
                                                first_ts) /
                            replay_speed;
      const double now_ms = stream_timer.seconds() * 1000.0;
      if (due_ms > now_ms) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(due_ms - now_ms));
      }
    }
    ops_total += batch.ops.size();
    Timer batch_timer;
    engine.apply_batch(batch);
    batch_seconds.push_back(batch_timer.seconds());
  }
  const double stream_elapsed = stream_timer.seconds();
  const std::uint64_t decompositions =
      metrics().counter("bcc.decompositions").value() - decompositions_before;
  const IncrementalStats stats = engine.stats();
  APGRE_REQUIRE(stats.batch_downgrades == 0,
                "stream workload: " + std::to_string(stats.batch_downgrades) +
                    " of " + std::to_string(trajectory.size()) +
                    " batches downgraded to a structural re-solve");
  APGRE_REQUIRE(decompositions == 0,
                "stream workload: batched path re-decomposed");

  // Exactness: the batched scores must reproduce a fresh serial solve of
  // the final graph (hard gate — throughput means nothing if it drifts).
  {
    BcOptions serial;
    serial.algorithm = Algorithm::kBrandesSerial;
    const std::vector<double> expected =
        betweenness(engine.graph(), serial).scores;
    for (Vertex v = 0; v < engine.graph().num_vertices(); ++v) {
      const double a = expected[v];
      const double b = engine.scores()[v];
      APGRE_REQUIRE(
          std::abs(a - b) <= 1e-6 + 1e-7 * std::max(std::abs(a), std::abs(b)),
          "stream workload: batched scores diverged from serial Brandes at v" +
              std::to_string(v));
    }
  }

  // Per-edge replay baseline: the same trajectory prefix through the
  // per-edge localized path, one remove_edge/insert_edge per op (capped —
  // it is the slow side by design).
  const std::size_t replay_batches =
      std::min<std::size_t>(trajectory.size(), 24);
  IncrementalBc per_edge(graph, opts);
  std::uint64_t replay_ops = 0;
  Timer replay_timer;
  for (std::size_t b = 0; b < replay_batches; ++b) {
    for (const EdgeOp& op : trajectory[b].ops) {
      if (op.insert) {
        per_edge.insert_edge(op.u, op.v);
      } else {
        per_edge.remove_edge(op.u, op.v);
      }
      ++replay_ops;
    }
  }
  const double replay_elapsed = replay_timer.seconds();

  const double stream_ups =
      stream_elapsed > 0.0 ? static_cast<double>(ops_total) / stream_elapsed
                           : 0.0;
  const double replay_ups =
      replay_elapsed > 0.0 ? static_cast<double>(replay_ops) / replay_elapsed
                           : 0.0;
  JsonValue::Object out;
  out["graph_vertices"] =
      JsonValue(static_cast<std::uint64_t>(graph.num_vertices()));
  out["graph_arcs"] = JsonValue(static_cast<std::uint64_t>(graph.num_arcs()));
  out["blocks"] =
      JsonValue(static_cast<std::uint64_t>(queries.bcc().num_components));
  out["batches"] = JsonValue(static_cast<std::uint64_t>(trajectory.size()));
  out["batch_size"] = JsonValue(static_cast<std::int64_t>(batch_size));
  out["ops"] = JsonValue(ops_total);
  out["replay_speed"] = JsonValue(replay_speed);
  out["elapsed_seconds"] = JsonValue(stream_elapsed);
  out["updates_per_second"] = JsonValue(stream_ups);
  out["batch_seconds_p50"] = JsonValue(percentile(batch_seconds, 50.0));
  out["batch_seconds_p90"] = JsonValue(percentile(batch_seconds, 90.0));
  out["per_edge_replay_batches"] =
      JsonValue(static_cast<std::uint64_t>(replay_batches));
  out["per_edge_replay_ops"] = JsonValue(replay_ops);
  out["per_edge_replay_elapsed_seconds"] = JsonValue(replay_elapsed);
  out["per_edge_replay_updates_per_second"] = JsonValue(replay_ups);
  out["speedup"] = JsonValue(replay_ups > 0.0 ? stream_ups / replay_ups : 0.0);
  JsonValue::Object counters;
  counters["batches"] = JsonValue(stats.batches);
  counters["batch_edges"] = JsonValue(stats.batch_edges);
  counters["coalesced_away"] = JsonValue(stats.coalesced_away);
  counters["blocks_resolved"] = JsonValue(stats.blocks_resolved);
  counters["batch_downgrades"] = JsonValue(stats.batch_downgrades);
  out["engine"] = JsonValue(std::move(counters));
  return JsonValue(std::move(out));
}

/// --workload peeling: end-to-end effect of the 2-core peel
/// (graph/transform.hpp) on the geometry it targets — a scale-free core
/// with a dominating tree fringe (preferential attachment + tendril chains
/// + pendants, the skew real social/web graphs show). Times scheduled APGRE
/// with PartitionOptions::peel_two_core off vs on (median of `repeat` runs
/// each), self-checks the peeled scores against a fresh serial Brandes
/// solve at the oracle tolerance, and reports the measured core fraction
/// next to the speedup so a regressing ratio is attributable (did the peel
/// get slower, or the fringe smaller?).
JsonValue run_peeling_workload(std::uint64_t seed, int repeat, double scale) {
  const Vertex core = std::max<Vertex>(64, static_cast<Vertex>(2000.0 * scale));
  const CsrGraph graph = attach_pendants(
      attach_chains(barabasi_albert(core, 4, seed),
                    /*count=*/core / 2, /*length=*/4, seed + 1),
      /*count=*/2 * core, seed + 2);

  BcOptions off;
  off.algorithm = Algorithm::kApgre;
  BcOptions on = off;
  on.apgre.partition.peel_two_core = true;

  auto median_seconds = [&](const BcOptions& opts, ApgreStats* stats) {
    std::vector<double> seconds;
    seconds.reserve(static_cast<std::size_t>(repeat));
    for (int i = 0; i < repeat; ++i) {
      const BcResult r = betweenness(graph, opts);
      APGRE_REQUIRE(r.status.ok(), "peeling workload: " + r.status.message);
      seconds.push_back(r.seconds);
      if (stats != nullptr) *stats = r.apgre_stats;
    }
    return percentile(seconds, 50.0);
  };
  const double off_seconds = median_seconds(off, nullptr);
  ApgreStats peel_stats;
  const double on_seconds = median_seconds(on, &peel_stats);

  // Exactness self-check: the peeled run must reproduce serial Brandes.
  BcOptions serial;
  serial.algorithm = Algorithm::kBrandesSerial;
  const std::vector<double> expected = betweenness(graph, serial).scores;
  const std::vector<double> actual = betweenness(graph, on).scores;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    const double a = expected[v];
    const double b = actual[v];
    APGRE_REQUIRE(
        std::abs(a - b) <= 1e-6 + 1e-7 * std::max(std::abs(a), std::abs(b)),
        "peeling workload: peeled scores diverged from serial Brandes at v" +
            std::to_string(v));
  }

  JsonValue::Object out;
  out["graph_vertices"] =
      JsonValue(static_cast<std::uint64_t>(graph.num_vertices()));
  out["graph_arcs"] = JsonValue(static_cast<std::uint64_t>(graph.num_arcs()));
  out["peeled_vertices"] =
      JsonValue(static_cast<std::uint64_t>(peel_stats.peeled_vertices));
  out["core_fraction"] = JsonValue(peel_stats.core_fraction);
  out["peel_seconds"] = JsonValue(peel_stats.peel_seconds);
  out["reps"] = JsonValue(static_cast<std::int64_t>(repeat));
  out["peel_off_seconds_median"] = JsonValue(off_seconds);
  out["peel_on_seconds_median"] = JsonValue(on_seconds);
  out["speedup"] =
      JsonValue(on_seconds > 0.0 ? off_seconds / on_seconds : 0.0);
  return JsonValue(std::move(out));
}

/// --workload decompose: serial Hopcroft-Tarjan DFS vs the parallel
/// Tarjan-Vishkin-style biconnectivity pass (bcc/parallel_bicomp.hpp) on the
/// fringe-heavy scale-free geometry the peeling workload uses — one giant
/// core block plus tens of thousands of bridge blocks, the skew that makes
/// the decomposition a measurable fraction of an APGRE solve. Reports the
/// median seconds and blocks/sec of each pass plus the speedup, and hard-
/// gates exactness: the parallel output must be structure-identical to the
/// canonicalized serial output field by field (timing means nothing if the
/// block structure drifts). The parallel timing includes its built-in
/// canonicalization — that is what production pays; the serial pass is
/// timed as production runs it (DFS numbering) and canonicalized outside
/// the timer for the comparison only.
JsonValue run_decompose_workload(std::uint64_t seed, int repeat, double scale) {
  const Vertex core =
      std::max<Vertex>(256, static_cast<Vertex>(24000.0 * scale));
  const CsrGraph graph = attach_pendants(
      attach_chains(barabasi_albert(core, 4, seed),
                    /*count=*/core / 2, /*length=*/6, seed + 1),
      /*count=*/2 * core, seed + 2);

  auto median_seconds = [repeat](auto&& run) {
    std::vector<double> seconds;
    seconds.reserve(static_cast<std::size_t>(repeat));
    for (int i = 0; i < repeat; ++i) {
      Timer t;
      run();
      seconds.push_back(t.seconds());
    }
    return percentile(seconds, 50.0);
  };

  BiconnectedComponents serial_bcc;
  const double serial_seconds =
      median_seconds([&] { serial_bcc = biconnected_components(graph); });
  BiconnectedComponents parallel_bcc;
  const double parallel_seconds = median_seconds(
      [&] { parallel_bcc = parallel_biconnected_components(graph); });

  // Hard exactness gate.
  canonicalize_blocks(serial_bcc);
  APGRE_REQUIRE(parallel_bcc.num_components == serial_bcc.num_components,
                "decompose workload: block counts diverge (parallel " +
                    std::to_string(parallel_bcc.num_components) + " vs serial " +
                    std::to_string(serial_bcc.num_components) + ")");
  APGRE_REQUIRE(parallel_bcc.component_vertices == serial_bcc.component_vertices,
                "decompose workload: block vertex sets diverge");
  APGRE_REQUIRE(parallel_bcc.component_edges == serial_bcc.component_edges,
                "decompose workload: block edge sets diverge");
  APGRE_REQUIRE(parallel_bcc.any_component == serial_bcc.any_component,
                "decompose workload: any_component maps diverge");
  APGRE_REQUIRE(parallel_bcc.is_articulation == serial_bcc.is_articulation,
                "decompose workload: articulation flags diverge");

  const double blocks = static_cast<double>(serial_bcc.num_components);
  JsonValue::Object out;
  out["graph_vertices"] =
      JsonValue(static_cast<std::uint64_t>(graph.num_vertices()));
  out["graph_arcs"] = JsonValue(static_cast<std::uint64_t>(graph.num_arcs()));
  out["blocks"] = JsonValue(static_cast<std::uint64_t>(serial_bcc.num_components));
  out["reps"] = JsonValue(static_cast<std::int64_t>(repeat));
  out["serial_seconds_median"] = JsonValue(serial_seconds);
  out["parallel_seconds_median"] = JsonValue(parallel_seconds);
  out["serial_blocks_per_second"] =
      JsonValue(serial_seconds > 0.0 ? blocks / serial_seconds : 0.0);
  out["parallel_blocks_per_second"] =
      JsonValue(parallel_seconds > 0.0 ? blocks / parallel_seconds : 0.0);
  out["speedup"] =
      JsonValue(parallel_seconds > 0.0 ? serial_seconds / parallel_seconds
                                       : 0.0);
  return JsonValue(std::move(out));
}

/// Throws Error on unreadable / malformed / schema-incompatible reports.
JsonValue load_report(const std::string& path) {
  std::ifstream in(path);
  APGRE_REQUIRE(in.good(), "cannot open report: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue report = JsonValue::parse(buf.str());
  APGRE_REQUIRE(report.is_object() && report.contains("schema_version"),
                "report " + path + " has no schema_version");
  APGRE_REQUIRE(report.at("schema_version").as_double() ==
                    static_cast<double>(kSchemaVersion),
                "report " + path + " has unsupported schema_version");
  APGRE_REQUIRE(report.contains("results") && report.at("results").is_array(),
                "report " + path + " has no results array");
  return report;
}

struct GateOutcome {
  std::size_t compared = 0;
  std::size_t skipped = 0;
  std::size_t regressions = 0;
};

/// Compare head timings against the baseline report; a pair regresses when
/// head > base * (1 + threshold). The gate runs on seconds_min, not the
/// median: scheduler noise only ever adds time, so the per-pair minimum is
/// the stable estimator on a shared machine (medians of sub-10ms runs
/// jitter past any reasonable threshold). Pairs missing on either side are
/// skipped — graph and algorithm sets may legitimately drift between
/// revisions.
GateOutcome gate_against_baseline(const JsonValue& baseline, const JsonValue& head,
                                  double threshold, double min_delta) {
  std::map<std::string, double> base_times;
  for (const JsonValue& result : baseline.at("results").as_array()) {
    const std::string graph = result.at("graph").as_string();
    for (const auto& [algo, stats] : result.at("algorithms").as_object()) {
      base_times[graph + "#" + algo] = stats.at("seconds_min").as_double();
    }
  }

  GateOutcome outcome;
  for (const JsonValue& result : head.at("results").as_array()) {
    const std::string graph = result.at("graph").as_string();
    for (const auto& [algo, stats] : result.at("algorithms").as_object()) {
      const auto it = base_times.find(graph + "#" + algo);
      if (it == base_times.end()) {
        ++outcome.skipped;
        continue;
      }
      ++outcome.compared;
      const double base = it->second;
      const double now = stats.at("seconds_min").as_double();
      // Both a relative and an absolute bar: sub-millisecond pairs can move
      // 30% on clock granularity alone, which is not a regression.
      if (now > base * (1.0 + threshold) && now - base > min_delta) {
        ++outcome.regressions;
        std::fprintf(stderr,
                     "REGRESSION %s %s: min %.6fs vs baseline %.6fs "
                     "(+%.1f%%, threshold %.1f%%)\n",
                     graph.c_str(), algo.c_str(), now, base,
                     (now / base - 1.0) * 100.0, threshold * 100.0);
      }
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "bench_regress: perf-regression harness over the check corpus and the "
      "Table-1 workload analogues.\nusage: bench_regress [flags]");
  flags.add_int("repeat", 5, "timed repetitions per (graph, algorithm)")
      .add_int("warmup", 1, "untimed warmup runs per (graph, algorithm)")
      .add_string("algo-set", "exact",
                  "comma list of algorithm names, `exact` (every exact "
                  "non-oracle registry entry + apgre_flat), or `apgre_flat` "
                  "(apgre with the scheduler disabled)")
      .add_string("graphs", "corpus", "graph set: corpus, workloads or both")
      .add_double("scale", 0.25, "workload linear-scale factor")
      .add_int("seed", 1, "corpus seed")
      .add_int("threads", 0, "thread budget (0 = runtime default)")
      .add_string("out", "", "write the JSON report to this path")
      .add_string("baseline", "", "compare against this prior report")
      .add_double("threshold", 0.50,
                  "relative slowdown tolerated before the gate fails")
      .add_double("min-delta", 0.005,
                  "absolute slowdown (seconds) a regression must also exceed")
      .add_string("revision", "unknown", "revision label stored in the report")
      .add_string("workload", "kernels",
                  "kernels (per-algorithm timings), service (concurrent "
                  "mixed-request throughput against apgre::Service) or "
                  "service_parallel (concurrent clients all running "
                  "parallel-kernel solves; aggregate requests/sec + "
                  "per-solve latency percentiles) or updates (sustained "
                  "localized incremental updates/sec vs full re-solve) or "
                  "peeling (2-core peel off vs on over a tree-fringed "
                  "scale-free graph, exactness self-checked) or stream "
                  "(batched ingest via IncrementalBc::apply_batch vs "
                  "per-edge replay, exactness self-checked) or decompose "
                  "(serial DFS vs parallel biconnectivity pass, structure "
                  "exactness hard-gated)")
      .add_int("clients", 8, "service workload: concurrent client threads")
      .add_int("requests", 50, "service workload: requests per client")
      .add_int("updates", 200, "updates workload: trajectory length")
      .add_int("batches", 64, "stream workload: batches in the trajectory")
      .add_int("batch-size", 8, "stream workload: edge ops per batch")
      .add_double("replay-speed", 0.0,
                  "stream workload: pace batches by their recorded millisecond "
                  "timestamps at this multiplier (0 = unpaced)")
      .add_string("stream-file", "",
                  "stream workload: replay batches from this edge-batch file "
                  "instead of generating a trajectory")
      .add_string("stream-out", "",
                  "stream workload: record the generated trajectory to this "
                  "edge-batch file");

  std::vector<MeasureSpec> algo_set;
  std::vector<BenchGraph> graph_list;
  std::string workload;
  try {
    const auto positional = flags.parse(argc, argv);
    if (flags.help_requested()) {
      std::fprintf(stderr, "%s", flags.help().c_str());
      return 0;
    }
    APGRE_REQUIRE(positional.empty(), "bench_regress takes no positional arguments");
    APGRE_REQUIRE(flags.get_int("repeat") >= 1, "--repeat must be >= 1");
    APGRE_REQUIRE(flags.get_int("warmup") >= 0, "--warmup must be >= 0");
    APGRE_REQUIRE(flags.get_double("threshold") >= 0.0,
                  "--threshold must be non-negative");
    workload = flags.get_string("workload");
    APGRE_REQUIRE(workload == "kernels" || workload == "service" ||
                      workload == "service_parallel" || workload == "updates" ||
                      workload == "peeling" || workload == "stream" ||
                      workload == "decompose",
                  "--workload must be kernels, service, service_parallel, "
                  "updates, peeling, stream or decompose");
    APGRE_REQUIRE(flags.get_int("clients") >= 1, "--clients must be >= 1");
    APGRE_REQUIRE(flags.get_int("requests") >= 1, "--requests must be >= 1");
    APGRE_REQUIRE(flags.get_int("updates") >= 1, "--updates must be >= 1");
    APGRE_REQUIRE(flags.get_int("batches") >= 1, "--batches must be >= 1");
    APGRE_REQUIRE(flags.get_int("batch-size") >= 1,
                  "--batch-size must be >= 1");
    APGRE_REQUIRE(flags.get_double("replay-speed") >= 0.0,
                  "--replay-speed must be non-negative");
    if (workload == "kernels") {
      algo_set = parse_algo_set(flags.get_string("algo-set"));
      graph_list = build_graph_list(
          flags.get_string("graphs"),
          static_cast<std::uint64_t>(flags.get_int("seed")),
          flags.get_double("scale"));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), flags.help().c_str());
    return 2;
  }

  const int repeat = static_cast<int>(flags.get_int("repeat"));
  const int warmup = static_cast<int>(flags.get_int("warmup"));
  const int threads = static_cast<int>(flags.get_int("threads"));

  JsonValue service_section;
  if (workload == "service") {
    service_section = run_service_workload(
        static_cast<std::uint64_t>(flags.get_int("seed")),
        static_cast<int>(flags.get_int("clients")),
        static_cast<int>(flags.get_int("requests")), threads);
    std::fprintf(stderr, "service workload: %.0f requests/sec, hit rate %.2f\n",
                 service_section.at("requests_per_second").as_double(),
                 service_section.at("hit_rate").as_double());
  } else if (workload == "service_parallel") {
    service_section = run_service_parallel_workload(
        static_cast<std::uint64_t>(flags.get_int("seed")),
        static_cast<int>(flags.get_int("clients")),
        static_cast<int>(flags.get_int("requests")), threads);
    std::fprintf(stderr,
                 "service_parallel workload: %d clients, %.0f requests/sec, "
                 "solve p90 %.4fs\n",
                 static_cast<int>(flags.get_int("clients")),
                 service_section.at("requests_per_second").as_double(),
                 service_section.at("solve_seconds_p90").as_double());
  }

  JsonValue updates_section;
  if (workload == "updates") {
    updates_section = run_updates_workload(
        static_cast<std::uint64_t>(flags.get_int("seed")),
        static_cast<int>(flags.get_int("updates")), flags.get_double("scale"));
    std::fprintf(stderr,
                 "updates workload: %.0f localized updates/sec vs %.1f full "
                 "re-solves/sec (%.1fx) over %.0f blocks\n",
                 updates_section.at("localized_updates_per_second").as_double(),
                 updates_section.at("full_resolve_updates_per_second")
                     .as_double(),
                 updates_section.at("speedup").as_double(),
                 updates_section.at("blocks").as_double());
  }

  JsonValue stream_section;
  if (workload == "stream") {
    try {
      stream_section = run_stream_workload(
          static_cast<std::uint64_t>(flags.get_int("seed")),
          static_cast<int>(flags.get_int("batches")),
          static_cast<int>(flags.get_int("batch-size")),
          flags.get_double("scale"), flags.get_double("replay-speed"),
          flags.get_string("stream-file"), flags.get_string("stream-out"));
    } catch (const Error& e) {
      // Exactness / downgrade gates are hard failures, not usage errors.
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr,
                 "stream workload: %.0f batched updates/sec vs %.0f per-edge "
                 "(%.1fx), batch p90 %.5fs, %.0f batches of %d\n",
                 stream_section.at("updates_per_second").as_double(),
                 stream_section.at("per_edge_replay_updates_per_second")
                     .as_double(),
                 stream_section.at("speedup").as_double(),
                 stream_section.at("batch_seconds_p90").as_double(),
                 stream_section.at("batches").as_double(),
                 static_cast<int>(flags.get_int("batch-size")));
  }

  JsonValue decompose_section;
  if (workload == "decompose") {
    try {
      decompose_section = run_decompose_workload(
          static_cast<std::uint64_t>(flags.get_int("seed")), repeat,
          flags.get_double("scale"));
    } catch (const Error& e) {
      // The structure-exactness gate is a hard failure, not a usage error.
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr,
                 "decompose workload: %.0f blocks, serial %.4fs vs parallel "
                 "%.4fs median (%.2fx), %.0f vs %.0f blocks/sec\n",
                 decompose_section.at("blocks").as_double(),
                 decompose_section.at("serial_seconds_median").as_double(),
                 decompose_section.at("parallel_seconds_median").as_double(),
                 decompose_section.at("speedup").as_double(),
                 decompose_section.at("serial_blocks_per_second").as_double(),
                 decompose_section.at("parallel_blocks_per_second").as_double());
  }

  JsonValue peeling_section;
  if (workload == "peeling") {
    peeling_section = run_peeling_workload(
        static_cast<std::uint64_t>(flags.get_int("seed")), repeat,
        flags.get_double("scale"));
    std::fprintf(stderr,
                 "peeling workload: %.0f of %.0f vertices peeled (%.1f%% "
                 "core), %.4fs -> %.4fs median (%.2fx)\n",
                 peeling_section.at("peeled_vertices").as_double(),
                 peeling_section.at("graph_vertices").as_double(),
                 100.0 * peeling_section.at("core_fraction").as_double(),
                 peeling_section.at("peel_off_seconds_median").as_double(),
                 peeling_section.at("peel_on_seconds_median").as_double(),
                 peeling_section.at("speedup").as_double());
  }

  JsonValue::Array results;
  for (const BenchGraph& bg : graph_list) {
    JsonValue::Object algorithms;
    for (const MeasureSpec& spec : algo_set) {
      algorithms[spec.label] = measure(bg, spec, repeat, warmup, threads);
    }
    JsonValue::Object entry;
    entry["graph"] = JsonValue(bg.name);
    entry["vertices"] = JsonValue(static_cast<std::uint64_t>(bg.graph.num_vertices()));
    entry["arcs"] = JsonValue(static_cast<std::uint64_t>(bg.graph.num_arcs()));
    entry["directed"] = JsonValue(bg.graph.directed());
    entry["algorithms"] = JsonValue(std::move(algorithms));
    results.push_back(JsonValue(std::move(entry)));
    std::fprintf(stderr, "measured %s (%u vertices)\n", bg.name.c_str(),
                 static_cast<unsigned>(bg.graph.num_vertices()));
  }

  JsonValue::Object report;
  report["schema_version"] = JsonValue(kSchemaVersion);
  report["revision"] = JsonValue(flags.get_string("revision"));
  {
    JsonValue::Object host;
    host["omp_max_threads"] = JsonValue(static_cast<std::int64_t>(num_threads()));
    host["trace_enabled"] = JsonValue(trace_enabled());
    report["host"] = JsonValue(std::move(host));
  }
  {
    JsonValue::Object config;
    config["repeat"] = JsonValue(static_cast<std::int64_t>(repeat));
    config["warmup"] = JsonValue(static_cast<std::int64_t>(warmup));
    config["graphs"] = JsonValue(flags.get_string("graphs"));
    config["algo_set"] = JsonValue(flags.get_string("algo-set"));
    config["scale"] = JsonValue(flags.get_double("scale"));
    config["seed"] = JsonValue(flags.get_int("seed"));
    config["workload"] = JsonValue(workload);
    report["config"] = JsonValue(std::move(config));
  }
  report["results"] = JsonValue(std::move(results));
  if (!service_section.is_null()) {
    report["service"] = std::move(service_section);
  }
  if (!updates_section.is_null()) {
    report["updates"] = std::move(updates_section);
  }
  if (!peeling_section.is_null()) {
    report["peeling"] = std::move(peeling_section);
  }
  if (!stream_section.is_null()) {
    report["stream"] = std::move(stream_section);
  }
  if (!decompose_section.is_null()) {
    report["decompose"] = std::move(decompose_section);
  }
  const JsonValue head(std::move(report));

  if (const std::string out = flags.get_string("out"); !out.empty()) {
    std::ofstream file(out);
    if (!file.good()) {
      std::fprintf(stderr, "error: cannot write report to %s\n", out.c_str());
      return 2;
    }
    file << head.dump(2) << "\n";
    std::fprintf(stderr, "wrote %s\n", out.c_str());
  }

  if (const std::string base_path = flags.get_string("baseline");
      !base_path.empty()) {
    JsonValue baseline;
    try {
      baseline = load_report(base_path);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    const GateOutcome outcome =
        gate_against_baseline(baseline, head, flags.get_double("threshold"),
                              flags.get_double("min-delta"));
    std::fprintf(stderr,
                 "baseline gate: %zu pairs compared, %zu skipped, "
                 "%zu regressions\n",
                 outcome.compared, outcome.skipped, outcome.regressions);
    if (outcome.regressions != 0) return 1;
  }
  return 0;
}
