// apgre_cli — compute betweenness centrality from the command line.
//
//   apgre_cli --format snap --algorithm apgre --top 20 graph.txt
//   apgre_cli --format dimacs --weighted --top 10 usa-road.gr
//   apgre_cli --format snap --directed --algorithm succs --output scores.csv g.txt
//   apgre_cli --grain 8 --steal-policy sequential graph.txt
//
// Formats: snap (edge list), dimacs (.gr), metis. Algorithms: every member
// of the registry (bc/bc.hpp; the --algorithm help text is generated from
// it) plus `edges` for edge betweenness. With --weighted (dimacs only) the
// weighted Dijkstra-based algorithms run instead.
//
// Exit codes: 0 success, 1 runtime failure (unreadable input, internal
// error), 2 usage error (unknown flags / names), 3 options rejected by
// validate_options (reported through BcResult::status).
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bc/bc.hpp"
#include "bc/edge_bc.hpp"
#include "bc/weighted.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_metis.hpp"
#include "graph/io_snap.hpp"
#include "graph/weighted.hpp"
#include "support/flags.hpp"
#include "support/timer.hpp"

namespace {

using namespace apgre;

void print_top(const std::vector<double>& scores, std::int64_t top) {
  std::vector<Vertex> order(scores.size());
  for (Vertex v = 0; v < scores.size(); ++v) order[v] = v;
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(top), scores.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(),
                    [&](Vertex a, Vertex b) { return scores[a] > scores[b]; });
  std::printf("rank\tvertex\tscore\n");
  for (std::size_t i = 0; i < k; ++i) {
    std::printf("%zu\t%u\t%.6f\n", i + 1, order[i], scores[order[i]]);
  }
}

/// "--algorithm" help text straight from the registry: "apgre | serial |
/// ... | sampling | edges" plus aliases.
std::string algorithm_help() {
  std::string help;
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (!help.empty()) help += " | ";
    help += info.name;
    if (info.alias != nullptr) {
      help += "/";
      help += info.alias;
    }
  }
  return help + " | edges";
}

void write_csv(const std::string& path, const std::vector<double>& scores) {
  std::ofstream out(path);
  APGRE_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << "vertex,betweenness\n";
  for (Vertex v = 0; v < scores.size(); ++v) {
    out << v << "," << scores[v] << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apgre;

  FlagParser flags(
      "apgre_cli: betweenness centrality via articulation-point-guided "
      "redundancy elimination (PPoPP'16) and baselines.\n"
      "usage: apgre_cli [flags] <graph file>");
  flags.add_string("format", "snap", "input format: snap | dimacs | metis")
      .add_string("algorithm", "apgre", algorithm_help())
      .add_bool("directed", false, "treat the input as directed")
      .add_bool("weighted", false,
                "use arc weights (dimacs format only; Dijkstra-based)")
      .add_int("threads", 0, "thread budget (0 = runtime default)")
      .add_int("top", 10, "print the k highest-ranked vertices/edges")
      .add_int("samples", 0, "sampling: number of sources (0 = sqrt(n))")
      .add_int("seed", 1, "sampling seed")
      .add_bool("halve-undirected", false,
                "report conventional undirected scores (each pair once)")
      .add_bool("scheduler", true,
                "apgre: score on the work-stealing scheduler "
                "(--scheduler=false restores the flat loop)")
      .add_int("grain", 0,
               "apgre scheduler: roots per task when splitting a large "
               "sub-graph (0 = auto)")
      .add_string("steal-policy", "random",
                  "apgre scheduler victim selection: random | sequential")
      .add_bool("adaptive-kernel", true,
                "apgre scheduler: pick the per-sub-graph kernel from "
                "size/root heuristics")
      .add_bool("peel", false,
                "apgre: peel degree-<=1 vertices to the 2-core before "
                "decomposition (exact; undirected only)")
      .add_string("output", "", "also write all scores to this CSV file");

  std::vector<std::string> positional;
  try {
    positional = flags.parse(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), flags.help().c_str());
    return 2;
  }
  if (flags.help_requested() || positional.size() != 1) {
    std::fprintf(stderr, "%s", flags.help().c_str());
    return flags.help_requested() ? 0 : 2;
  }

  try {
    const std::string& path = positional.front();
    const std::string format = flags.get_string("format");
    const bool directed = flags.get_bool("directed");
    const std::string algorithm = flags.get_string("algorithm");

    // ---- Weighted path --------------------------------------------------
    if (flags.get_bool("weighted")) {
      APGRE_REQUIRE(format == "dimacs", "--weighted requires --format dimacs");
      std::ifstream in(path);
      APGRE_REQUIRE(in.good(), "cannot open " + path);
      const WeightedCsrGraph g = read_dimacs_weighted(in, directed, path);
      std::printf("loaded %s: %u vertices, %llu weighted arcs\n", path.c_str(),
                  g.num_vertices(), static_cast<unsigned long long>(g.num_arcs()));
      Timer timer;
      std::vector<double> scores;
      if (algorithm == "apgre") {
        scores = weighted_apgre_bc(g);
      } else if (algorithm == "serial") {
        scores = weighted_brandes_bc(g);
      } else {
        throw OptionError("--weighted supports --algorithm apgre|serial");
      }
      std::printf("computed in %.3f s\n\n", timer.seconds());
      print_top(scores, flags.get_int("top"));
      if (!flags.get_string("output").empty()) {
        write_csv(flags.get_string("output"), scores);
      }
      return 0;
    }

    // ---- Unweighted path ------------------------------------------------
    CsrGraph g;
    if (format == "snap") {
      g = read_snap_file(path, directed).graph;
    } else if (format == "dimacs") {
      g = read_dimacs_file(path, directed);
    } else if (format == "metis") {
      APGRE_REQUIRE(!directed, "metis graphs are undirected");
      g = read_metis_file(path);
    } else {
      throw OptionError("unknown --format " + format);
    }
    std::printf("loaded %s: %u vertices, %llu arcs (%s)\n", path.c_str(),
                g.num_vertices(), static_cast<unsigned long long>(g.num_arcs()),
                g.directed() ? "directed" : "undirected");

    if (algorithm == "edges") {
      Timer timer;
      const auto scores = edge_betweenness_bc(g);
      std::printf("edge betweenness computed in %.3f s\n\n", timer.seconds());
      std::printf("rank\tedge\tscore\n");
      const auto top = top_edges(g, scores, static_cast<std::size_t>(flags.get_int("top")));
      for (std::size_t i = 0; i < top.size(); ++i) {
        std::printf("%zu\t%u-%u\t%.6f\n", i + 1, top[i].first.src,
                    top[i].first.dst, top[i].second);
      }
      return 0;
    }

    BcOptions opts;
    opts.algorithm = algorithm_from_name(algorithm);
    opts.threads = static_cast<int>(flags.get_int("threads"));
    opts.undirected_halving = flags.get_bool("halve-undirected");
    opts.num_samples = static_cast<Vertex>(flags.get_int("samples"));
    opts.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    opts.scheduler.enabled = flags.get_bool("scheduler");
    opts.scheduler.grain = static_cast<int>(flags.get_int("grain"));
    opts.scheduler.steal_policy =
        steal_policy_from_name(flags.get_string("steal-policy"));
    opts.scheduler.adaptive_kernel = flags.get_bool("adaptive-kernel");
    opts.apgre.partition.peel_two_core = flags.get_bool("peel");

    const BcResult result = betweenness(g, opts);
    if (!result.status.ok()) {
      std::fprintf(stderr, "invalid options: %s\n", result.status.message.c_str());
      return 3;
    }
    std::printf("%s finished in %.3f s (%.1f MTEPS)\n", algorithm.c_str(),
                result.seconds, result.mteps);
    if (opts.algorithm == Algorithm::kApgre) {
      std::printf("decomposition: %zu sub-graphs, %u APs, %u pendants derived, "
                  "%.1f%%+%.1f%% redundancy removed\n",
                  result.apgre_stats.num_subgraphs,
                  result.apgre_stats.num_articulation_points,
                  result.apgre_stats.num_pendants_removed,
                  100.0 * result.apgre_stats.partial_redundancy,
                  100.0 * result.apgre_stats.total_redundancy);
      if (opts.apgre.partition.peel_two_core) {
        std::printf("peel: %u vertices peeled (%.1f%% core) in %.3f s\n",
                    result.apgre_stats.peeled_vertices,
                    100.0 * result.apgre_stats.core_fraction,
                    result.apgre_stats.peel_seconds);
      }
      if (opts.scheduler.enabled) {
        std::printf("scheduler: %llu tasks (%zu fine / %zu batch / %zu whole), "
                    "%llu steals, %.3f s idle\n",
                    static_cast<unsigned long long>(result.apgre_stats.sched_tasks),
                    result.apgre_stats.num_fine_subgraphs,
                    result.apgre_stats.num_batch_tasks,
                    result.apgre_stats.num_subgraph_tasks,
                    static_cast<unsigned long long>(result.apgre_stats.sched_steals),
                    result.apgre_stats.sched_idle_seconds);
      }
    }
    std::printf("\n");
    print_top(result.scores, flags.get_int("top"));
    if (!flags.get_string("output").empty()) {
      write_csv(flags.get_string("output"), result.scores);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
