// apgre_diff — differential / metamorphic / invariant sweep driver.
//
//   apgre_diff --seed 1..20 --algo-set exact
//   apgre_diff --seed 7 --cases pendants --verbose
//   apgre_diff --seed 1..5 --large --algo-set apgre,serial,lockfree
//
// For every seed in the range and every corpus case (check/corpus.hpp) the
// tool diffs the selected algorithms against serial Brandes with per-vertex
// blame, runs the metamorphic rules (rotating the algorithm under test
// through the set), diffs the 2-core-peeled solve and a peeled incremental
// trajectory against the unpeeled reference (--peel), validates the
// decomposition + ApgreStats invariants, and sweeps the biconnectivity-pass
// agreement check across the serial and parallel passes (--parallel-bcc).
// Exit status 0 means zero
// divergence above tolerance; 1 means
// at least one check failed (details on stderr); 2 is a usage error.
// CI and fuzzing drive this binary; a failing (seed, case) pair is
// reproducible by rerunning with the same flags (see docs/TESTING.md).
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bc/bc.hpp"
#include "check/corpus.hpp"
#include "check/invariants.hpp"
#include "check/metamorphic.hpp"
#include "check/oracle.hpp"
#include "support/flags.hpp"
#include "support/timer.hpp"

namespace {

using namespace apgre;

/// "--seed 7" or "--seed 1..20" (inclusive range).
std::pair<std::uint64_t, std::uint64_t> parse_seed_range(const std::string& spec) {
  const auto dots = spec.find("..");
  try {
    if (dots == std::string::npos) {
      const std::uint64_t seed = std::stoull(spec);
      return {seed, seed};
    }
    const std::uint64_t first = std::stoull(spec.substr(0, dots));
    const std::uint64_t last = std::stoull(spec.substr(dots + 2));
    APGRE_REQUIRE(first <= last, "--seed range must be ascending");
    return {first, last};
  } catch (const std::invalid_argument&) {
    throw OptionError("--seed expects N or A..B, got `" + spec + "`");
  } catch (const std::out_of_range&) {
    throw OptionError("--seed value out of range: `" + spec + "`");
  }
}

std::vector<Algorithm> parse_algo_set(const std::string& spec) {
  if (spec == "exact") return {};  // oracle default: exact_algorithm_set(g)
  std::vector<Algorithm> set;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string name =
        spec.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!name.empty()) set.push_back(algorithm_from_name(name));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  APGRE_REQUIRE(!set.empty(), "--algo-set selected no algorithms");
  return set;
}

struct SweepCounters {
  std::size_t graphs = 0;
  std::size_t differential_runs = 0;
  std::size_t metamorphic_checks = 0;
  std::size_t invariant_graphs = 0;
  std::size_t weighted_graphs = 0;
  std::size_t peel_graphs = 0;
  std::size_t agreement_graphs = 0;
  std::size_t trajectory_steps = 0;
  std::size_t failures = 0;
  double worst_divergence = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "apgre_diff: cross-algorithm differential + metamorphic + invariant "
      "sweep over the seeded graph corpus.\n"
      "usage: apgre_diff [flags]");
  flags.add_string("seed", "1", "seed or inclusive range A..B")
      .add_string("algo-set", "exact",
                  "`exact` (every exact algorithm, naive when small) or a "
                  "comma list of names")
      .add_string("cases", "", "only corpus cases whose name contains this")
      .add_bool("large", false, "use the large corpus (naive auto-skipped)")
      .add_bool("metamorphic", true, "run the metamorphic rules")
      .add_bool("invariants", true, "check decomposition + ApgreStats invariants")
      .add_bool("weighted", true, "also diff the weighted algorithm family")
      .add_bool("peel", true,
                "diff the 2-core-peeled solve (and a peeled incremental "
                "trajectory) against the unpeeled reference")
      .add_string("parallel-bcc", "both",
                  "decomposition_agreement axis: `on` (parallel pass), "
                  "`off` (serial DFS), `both`, or `none`")
      .add_double("rel", 1e-7, "relative score tolerance")
      .add_double("abs", 1e-6, "absolute score tolerance")
      .add_int("max-naive", 256, "largest |V| the O(V^3) naive oracle runs on")
      .add_int("threads", 0, "thread budget (0 = runtime default)")
      .add_bool("verbose", false, "print every case, not only failures");

  std::pair<std::uint64_t, std::uint64_t> seeds;
  OracleOptions oracle;
  bool large = false;
  bool agreement_on = false;
  bool agreement_off = false;
  try {
    const auto positional = flags.parse(argc, argv);
    if (flags.help_requested()) {
      std::fprintf(stderr, "%s", flags.help().c_str());
      return 0;
    }
    APGRE_REQUIRE(positional.empty(), "apgre_diff takes no positional arguments");
    seeds = parse_seed_range(flags.get_string("seed"));
    oracle.algorithms = parse_algo_set(flags.get_string("algo-set"));
    oracle.rel_tolerance = flags.get_double("rel");
    oracle.abs_tolerance = flags.get_double("abs");
    oracle.max_naive_vertices = static_cast<Vertex>(flags.get_int("max-naive"));
    oracle.threads = static_cast<int>(flags.get_int("threads"));
    large = flags.get_bool("large");
    const std::string axis = flags.get_string("parallel-bcc");
    APGRE_REQUIRE(axis == "on" || axis == "off" || axis == "both" ||
                      axis == "none",
                  "--parallel-bcc expects on, off, both, or none");
    agreement_on = axis == "on" || axis == "both";
    agreement_off = axis == "off" || axis == "both";
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), flags.help().c_str());
    return 2;
  }

  const std::string case_filter = flags.get_string("cases");
  const bool verbose = flags.get_bool("verbose");
  SweepCounters counters;
  Timer timer;

  for (std::uint64_t seed = seeds.first; seed <= seeds.second; ++seed) {
    for (const CorpusCase& c : graph_corpus(seed, /*tiny=*/!large)) {
      if (c.name.find(case_filter) == std::string::npos) continue;
      ++counters.graphs;
      const std::string tag = "seed " + std::to_string(seed) + " " + c.name;

      // --- Differential oracle ------------------------------------------
      const OracleReport report = differential_check(c.graph, oracle);
      counters.differential_runs += report.algorithms.size();
      counters.worst_divergence =
          std::max(counters.worst_divergence, report.max_divergence);
      if (!report.ok) {
        ++counters.failures;
        std::fprintf(stderr, "FAIL [differential] %s\n%s", tag.c_str(),
                     report.summary().c_str());
      } else if (verbose) {
        std::printf("ok   [differential] %s: max divergence %.3g\n",
                    tag.c_str(), report.max_divergence);
      }

      // --- Metamorphic rules, rotating the algorithm under test ---------
      if (flags.get_bool("metamorphic")) {
        std::vector<Algorithm> pool = oracle.algorithms;
        if (pool.empty()) pool = exact_algorithm_set(c.graph, 0);  // no naive
        BcOptions under_test;
        under_test.algorithm = pool[counters.graphs % pool.size()];
        under_test.threads = oracle.threads;
        for (const MetamorphicResult& r :
             run_metamorphic_rules(c.graph, under_test, seed,
                                   oracle.rel_tolerance, oracle.abs_tolerance)) {
          if (!r.applied) continue;
          ++counters.metamorphic_checks;
          if (!r.ok) {
            ++counters.failures;
            std::fprintf(stderr, "FAIL [metamorphic:%s] %s (%s): %s\n",
                         r.rule.c_str(), tag.c_str(),
                         algorithm_name(under_test.algorithm).c_str(),
                         r.detail.c_str());
          } else if (verbose) {
            std::printf("ok   [metamorphic:%s] %s (%s)\n", r.rule.c_str(),
                        tag.c_str(),
                        algorithm_name(under_test.algorithm).c_str());
          }
        }
      }

      // --- Peel-on vs peel-off axis -------------------------------------
      // The metamorphic peel_solve rule rotates the reference algorithm; this
      // axis is the fixed-reference version (serial Brandes vs peeled APGRE)
      // plus a peeled *incremental* trajectory: after every random edge
      // mutation the tracked solver — including its structural fallbacks when
      // an update lands on the peeled forest — must match a from-scratch
      // static solve on the mutated graph.
      if (flags.get_bool("peel")) {
        ++counters.peel_graphs;
        BcOptions reference;
        reference.threads = oracle.threads;
        BcOptions peeled = reference;
        peeled.algorithm = Algorithm::kApgre;
        peeled.apgre.partition.peel_two_core = true;
        const ScoreComparison cmp = compare_scores(
            betweenness(c.graph, reference).scores,
            betweenness(c.graph, peeled).scores, oracle.rel_tolerance,
            oracle.abs_tolerance);
        counters.worst_divergence =
            std::max(counters.worst_divergence, cmp.max_divergence);
        if (!cmp.ok) {
          ++counters.failures;
          std::fprintf(stderr,
                       "FAIL [peel] %s: %zu vertices over tolerance; worst v%u "
                       "expected %g actual %g\n",
                       tag.c_str(), cmp.num_violations, cmp.worst_vertex,
                       cmp.expected_score, cmp.actual_score);
        } else if (verbose) {
          std::printf("ok   [peel] %s: max divergence %.3g\n", tag.c_str(),
                      cmp.max_divergence);
        }

        if (c.graph.num_vertices() >= 2 && c.graph.num_vertices() <= 2000) {
          const std::vector<DynamicStep> steps =
              random_dynamic_steps(c.graph, /*count=*/4, seed);
          const OracleReport trajectory =
              incremental_differential_check(c.graph, steps, peeled, oracle);
          counters.trajectory_steps += trajectory.algorithms.size();
          counters.worst_divergence =
              std::max(counters.worst_divergence, trajectory.max_divergence);
          if (!trajectory.ok) {
            ++counters.failures;
            std::fprintf(stderr, "FAIL [peel-trajectory] %s\n%s", tag.c_str(),
                         trajectory.summary().c_str());
          } else if (verbose) {
            std::printf("ok   [peel-trajectory] %s: %zu steps, max divergence "
                        "%.3g\n",
                        tag.c_str(), trajectory.algorithms.size(),
                        trajectory.max_divergence);
          }
        }
      }

      // --- Decomposition + stats invariants -----------------------------
      if (flags.get_bool("invariants")) {
        ++counters.invariant_graphs;
        const Decomposition dec = decompose(c.graph);
        std::vector<std::string> violations =
            check_decomposition_invariants(c.graph, dec, /*max_reach_checks=*/64);
        BcOptions apgre_run;
        apgre_run.algorithm = Algorithm::kApgre;
        apgre_run.threads = oracle.threads;
        const BcResult result = betweenness(c.graph, apgre_run);
        for (std::string& v :
             check_stats_invariants(c.graph, result.apgre_stats)) {
          violations.push_back(std::move(v));
        }
        if (!violations.empty()) {
          ++counters.failures;
          std::fprintf(stderr, "FAIL [invariants] %s:\n", tag.c_str());
          for (const std::string& v : violations) {
            std::fprintf(stderr, "  %s\n", v.c_str());
          }
        } else if (verbose) {
          std::printf("ok   [invariants] %s\n", tag.c_str());
        }
      }

      // --- Biconnectivity-pass agreement axis ---------------------------
      // Runs check_decomposition_agreement with the parallel pass forced on
      // and/or the serial DFS forced, per --parallel-bcc. The kOn leg also
      // cross-checks the canonicalized parallel output against the serial
      // reference (invariants.hpp point 4), so `both` diffs the two passes
      // on every corpus case.
      if (agreement_on || agreement_off) {
        ++counters.agreement_graphs;
        std::vector<std::string> violations;
        if (agreement_off) {
          for (std::string& v : check_decomposition_agreement(
                   c.graph, ParallelDecomposition::kOff)) {
            violations.push_back("serial: " + std::move(v));
          }
        }
        if (agreement_on) {
          for (std::string& v : check_decomposition_agreement(
                   c.graph, ParallelDecomposition::kOn)) {
            violations.push_back("parallel: " + std::move(v));
          }
        }
        if (!violations.empty()) {
          ++counters.failures;
          std::fprintf(stderr, "FAIL [parallel-bcc] %s:\n", tag.c_str());
          for (const std::string& v : violations) {
            std::fprintf(stderr, "  %s\n", v.c_str());
          }
        } else if (verbose) {
          std::printf("ok   [parallel-bcc] %s\n", tag.c_str());
        }
      }
    }

    // --- Weighted family ------------------------------------------------
    if (flags.get_bool("weighted")) {
      for (const WeightedCorpusCase& c : weighted_corpus(seed, !large)) {
        if (c.name.find(case_filter) == std::string::npos) continue;
        ++counters.weighted_graphs;
        const OracleReport report = weighted_differential_check(c.graph, oracle);
        counters.worst_divergence =
            std::max(counters.worst_divergence, report.max_divergence);
        if (!report.ok) {
          ++counters.failures;
          std::fprintf(stderr, "FAIL [weighted] seed %llu %s\n%s",
                       static_cast<unsigned long long>(seed), c.name.c_str(),
                       report.summary().c_str());
        } else if (verbose) {
          std::printf("ok   [weighted] seed %llu %s: max divergence %.3g\n",
                      static_cast<unsigned long long>(seed), c.name.c_str(),
                      report.max_divergence);
        }
      }
    }
  }

  if (counters.graphs == 0 && counters.weighted_graphs == 0) {
    // A typo'd --cases filter must not read as a clean sweep.
    std::fprintf(stderr, "error: no corpus case matches --cases `%s`\n",
                 case_filter.c_str());
    return 2;
  }
  std::printf(
      "apgre_diff: seeds %llu..%llu, %zu graphs (%zu weighted), "
      "%zu differential runs, %zu metamorphic checks, %zu invariant graphs, "
      "%zu peel graphs (%zu trajectory steps), %zu agreement graphs; "
      "worst divergence %.3g; %zu failures in %.2f s\n",
      static_cast<unsigned long long>(seeds.first),
      static_cast<unsigned long long>(seeds.second), counters.graphs,
      counters.weighted_graphs, counters.differential_runs,
      counters.metamorphic_checks, counters.invariant_graphs,
      counters.peel_graphs, counters.trajectory_steps,
      counters.agreement_graphs, counters.worst_divergence, counters.failures,
      timer.seconds());
  return counters.failures == 0 ? 0 : 1;
}
